"""Tests for the benchmark harness itself (smoke profile: seconds)."""

import pytest

from repro.bench.config import PROFILES, get_profile
from repro.bench.reporting import ExperimentTable
from repro.bench.runner import jaccard, run_method
from repro.bench.workloads import get_bundle, sample_query_users

SMOKE = PROFILES["smoke"]


class TestConfig:
    def test_profiles_exist(self):
        assert set(PROFILES) == {"smoke", "quick", "full"}

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert get_profile().name == "smoke"

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert get_profile("full").name == "full"

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            get_profile("gigantic")

    def test_table3_parameters_mirrored(self):
        full = PROFILES["full"]
        assert full.k_values == (10, 20, 30, 40, 50)
        assert full.alpha_values == (0.1, 0.3, 0.5, 0.7, 0.9)
        assert full.s_values == (5, 10, 15, 20, 25)
        assert full.default_k == 30
        assert full.default_alpha == 0.3
        assert full.default_s == 10
        assert full.num_landmarks == 8


class TestWorkloads:
    def test_bundle_caching(self):
        a = get_bundle("gowalla", SMOKE)
        b = get_bundle("gowalla", SMOKE)
        assert a.engine is b.engine

    def test_distinct_s_distinct_engines(self):
        a = get_bundle("gowalla", SMOKE, s=5)
        b = get_bundle("gowalla", SMOKE, s=10)
        assert a.engine is not b.engine
        assert a.dataset is b.dataset  # dataset shared

    def test_query_users_are_located(self):
        bundle = get_bundle("gowalla", SMOKE)
        assert bundle.query_users
        for user in bundle.query_users:
            assert bundle.dataset.locations.has_location(user)

    def test_sample_query_users_deterministic(self):
        bundle = get_bundle("gowalla", SMOKE)
        a = sample_query_users(bundle.dataset, 5, seed=3)
        b = sample_query_users(bundle.dataset, 5, seed=3)
        assert a == b

    def test_correlated_bundle_queries_from_anchor(self):
        bundle = get_bundle("correlated-positive", SMOKE)
        assert len(set(bundle.query_users)) == 1

    def test_scale_bundles_sizes(self):
        sizes = [get_bundle(f"scale-{i}", SMOKE).engine.graph.n for i in range(3)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            get_bundle("mars", SMOKE)


class TestRunner:
    def test_run_method_aggregates(self):
        bundle = get_bundle("gowalla", SMOKE)
        agg = run_method(bundle.engine, bundle.query_users, "ais", k=5, alpha=0.3)
        assert agg.queries == len(bundle.query_users)
        assert agg.avg_time > 0
        assert agg.avg_pops > 0
        assert agg.results == []

    def test_keep_results(self):
        bundle = get_bundle("gowalla", SMOKE)
        agg = run_method(
            bundle.engine, bundle.query_users, "sfa", k=5, alpha=0.3, keep_results=True
        )
        assert len(agg.results) == agg.queries

    def test_empty_workload_rejected(self):
        bundle = get_bundle("gowalla", SMOKE)
        with pytest.raises(ValueError):
            run_method(bundle.engine, [], "ais")

    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 1.0
        assert jaccard({1}, set()) == 0.0


class TestReporting:
    def test_row_width_checked(self):
        table = ExperimentTable("X", "t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_text_rendering(self):
        table = ExperimentTable("Fig", "demo", ["k", "AIS"], notes="note")
        table.add_row([10, 0.5])
        text = table.to_text()
        assert "Fig" in text and "AIS" in text and "(note)" in text

    def test_markdown_rendering(self):
        table = ExperimentTable("Fig", "demo", ["k", "AIS"])
        table.add_row([10, 0.123456])
        md = table.to_markdown()
        assert md.startswith("#### Fig")
        assert "| 0.1235 |" in md

    def test_column_access(self):
        table = ExperimentTable("Fig", "demo", ["k", "AIS"])
        table.add_row([10, 1.0])
        table.add_row([20, 2.0])
        assert table.column("AIS") == [1.0, 2.0]
        with pytest.raises(ValueError):
            table.column("missing")


class TestFigureDrivers:
    """End-to-end smoke of every driver (tiny profile)."""

    @pytest.mark.parametrize(
        "name",
        ["table2", "fig7a", "fig7b", "fig9", "fig10", "fig11", "fig13", "fig14a", "fig14b"],
    )
    def test_driver_produces_tables(self, name):
        from repro.bench.figures import ALL_EXPERIMENTS

        tables = ALL_EXPERIMENTS[name](SMOKE)
        assert tables
        for table in tables:
            assert table.rows
            assert all(len(row) == len(table.headers) for row in table.rows)

    def test_fig8_structure(self):
        from repro.bench.figures import fig8

        tables = fig8(SMOKE, include_ch=False)
        assert len(tables) == 4
        ks = tables[0].column("k")
        assert ks == list(SMOKE.k_values)

    def test_fig12_structure(self):
        from repro.bench.figures import fig12

        tables = fig12(SMOKE)
        assert tables[0].column("s") == list(SMOKE.s_values)


class TestArtifacts:
    """BENCH_<name>.json emission (the cross-PR perf trajectory)."""

    def test_write_bench_json_envelope(self, tmp_path):
        from repro.bench.artifacts import write_bench_json
        import json

        path = write_bench_json("unit", {"speedup": 3.5, "points": [1, 2]}, tmp_path)
        assert path.name == "BENCH_unit.json"
        data = json.loads(path.read_text())
        assert data["bench"] == "unit"
        assert data["profile"] in {"smoke", "quick", "full"}
        assert data["speedup"] == 3.5 and data["points"] == [1, 2]
        assert "generated_unix" in data and "python" in data

    def test_directory_env_override(self, tmp_path, monkeypatch):
        from repro.bench.artifacts import bench_json_path, write_bench_json

        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", str(tmp_path / "nested"))
        path = write_bench_json("env", {})
        assert path == bench_json_path("env")
        assert path.parent == tmp_path / "nested" and path.exists()

    def test_missing_artifact_dir_is_created(self, tmp_path, monkeypatch):
        """A fresh checkout pointing REPRO_BENCH_JSON_DIR at a
        not-yet-existing path must get the directory created, not an
        OSError at the end of a long benchmark run."""
        from repro.bench.artifacts import write_bench_json

        deep = tmp_path / "does" / "not" / "exist" / "yet"
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", str(deep))
        path = write_bench_json("fresh", {"points": []})
        assert path.exists() and path.parent == deep

    def test_sessionfinish_survives_unwritable_artifact_dir(self, tmp_path, monkeypatch):
        """A read-only checkout (or a bogus REPRO_BENCH_JSON_DIR) must
        not fail the benchmark session: the harvest hook diverts the
        artifact to the tmp dir instead."""
        import importlib
        import tempfile
        from pathlib import Path

        conftest = importlib.import_module("benchmarks.conftest")
        blocker = tmp_path / "file.txt"
        blocker.write_text("not a directory")
        # mkdir under a regular file raises OSError even for root
        monkeypatch.setenv("REPRO_BENCH_JSON_DIR", str(blocker / "sub"))
        monkeypatch.setattr(
            conftest, "_RECORDED", {"harness_fallback_probe": [{"test": "t"}]}
        )
        fallback = Path(tempfile.gettempdir()) / "BENCH_harness_fallback_probe.json"
        fallback.unlink(missing_ok=True)
        conftest.pytest_sessionfinish(session=None, exitstatus=0)
        assert fallback.exists()
        fallback.unlink()

    def test_tables_payload_roundtrips_rows(self):
        from repro.bench.artifacts import tables_payload

        table = ExperimentTable("exp", "title", ["A", "B"])
        table.add_row([1, 2.5])
        payload = tables_payload([table])
        assert payload["tables"][0]["rows"] == [[1, 2.5]]
        assert payload["tables"][0]["headers"] == ["A", "B"]

    def test_planner_regret_bench_importable_and_builds_workload(self):
        """The regret bench's workload generator: degree-skewed Zipf
        draws, mixed k/alpha, deterministic under the profile seed."""
        import importlib

        module = importlib.import_module("benchmarks.bench_planner_regret")
        from repro.core.engine import GeoSocialEngine
        from repro.datasets.synthetic import gowalla_like

        engine = GeoSocialEngine.from_dataset(gowalla_like(n=300, seed=9))
        a = module.build_workload(engine, SMOKE, count=30)
        b = module.build_workload(engine, SMOKE, count=30)
        assert a == b and len(a) == 30
        assert {k for _, k, _ in a} <= set(module.K_CHOICES)
        assert {alpha for _, _, alpha in a} <= set(module.ALPHA_CHOICES)
        users = {u for u, _, _ in a}
        assert all(engine.locations.has_location(u) for u in users)
