"""Integration: dynamic workloads interleaving updates and queries.

The paper's setting is dynamic — users move constantly.  These tests
drive long interleaved sequences of location updates, coverage changes,
and queries across all methods, checking exactness against brute force
and structural invariants of the indexes throughout.
"""

import random

import pytest

from repro.core.engine import GeoSocialEngine
from tests.conftest import assert_same_scores, random_instance


@pytest.fixture()
def engine():
    graph, locations = random_instance(120, seed=401, coverage=0.75)
    return GeoSocialEngine(graph, locations, num_landmarks=3, s=3, seed=3)


def check_structural_invariants(engine: GeoSocialEngine) -> None:
    """The spatial indexes and location table must stay consistent."""
    located = set(engine.locations.located_users())
    # SPA grid contents == located users, each in exactly one cell.
    assert set(engine.grid._cell_of_user) == located
    seen = set()
    for cell, members in engine.grid.cells.items():
        for user in members:
            assert user not in seen
            seen.add(user)
    assert seen == located
    # Aggregate index: same population, summaries bracket their members.
    agg = engine.aggregate
    indexed = set()
    lm = engine.landmarks
    for leaf, summary in agg.leaf_summaries.items():
        members = agg.users_in(leaf)
        assert members, "empty leaf summaries must be dropped"
        for user in members:
            indexed.add(user)
            vec = lm.vector(user)
            for j in range(lm.m):
                assert summary.m_check[j] <= vec[j] <= summary.m_hat[j]
    assert indexed == located


def test_interleaved_updates_and_queries(engine):
    rng = random.Random(11)
    for round_no in range(8):
        for _ in range(25):
            user = rng.randrange(engine.graph.n)
            action = rng.random()
            if action < 0.75:
                engine.move_user(user, rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2))
            elif engine.locations.has_location(user):
                engine.forget_location(user)
        check_structural_invariants(engine)
        located = list(engine.locations.located_users())
        if not located:
            continue
        query_user = rng.choice(located)
        k = rng.choice([3, 8])
        alpha = rng.choice([0.2, 0.5, 0.8])
        expected = engine.query(query_user, k=k, alpha=alpha, method="bruteforce")
        for method in ("sfa", "spa", "tsa", "tsa-qc", "ais", "ais-minus", "ais-bid"):
            got = engine.query(query_user, k=k, alpha=alpha, method=method)
            assert_same_scores(expected, got)


def test_everyone_goes_dark_then_returns(engine):
    rng = random.Random(13)
    original = {
        user: engine.locations.get(user) for user in engine.locations.located_users()
    }
    for user in list(engine.locations.located_users()):
        engine.forget_location(user)
    check_structural_invariants(engine)
    assert engine.locations.n_located == 0
    # Pure social queries still work while nobody shares a location.
    result = engine.query(0, k=5, alpha=1.0, method="sfa")
    assert len(result) == 5
    # Everyone returns (possibly elsewhere).
    for user, (x, y) in original.items():
        engine.move_user(user, x + rng.uniform(-0.05, 0.05), y)
    check_structural_invariants(engine)
    located = list(engine.locations.located_users())
    expected = engine.query(located[0], k=8, alpha=0.4, method="bruteforce")
    assert_same_scores(expected, engine.query(located[0], k=8, alpha=0.4, method="ais"))


def test_query_user_moves_between_queries(engine):
    rng = random.Random(17)
    located = list(engine.locations.located_users())
    mover = located[0]
    previous_users = None
    for _ in range(5):
        engine.move_user(mover, rng.random(), rng.random())
        expected = engine.query(mover, k=6, alpha=0.3, method="bruteforce")
        got = engine.query(mover, k=6, alpha=0.3, method="ais")
        assert_same_scores(expected, got)
        previous_users = got.users


def test_cached_searchers_see_updates(engine):
    """Engine caches per-method searcher objects; they must observe
    index/location mutations made after their construction."""
    located = list(engine.locations.located_users())
    q = located[0]
    engine.query(q, k=5, alpha=0.3, method="ais")  # instantiate searcher
    engine.query(q, k=5, alpha=0.3, method="spa")
    victim = located[1]
    engine.move_user(victim, 5.0, 5.0)  # far away
    expected = engine.query(q, k=5, alpha=0.3, method="bruteforce")
    assert_same_scores(expected, engine.query(q, k=5, alpha=0.3, method="ais"))
    assert_same_scores(expected, engine.query(q, k=5, alpha=0.3, method="spa"))


def test_boundary_crossing_move_rehomes_and_refreshes_cache():
    """A user moving between shard cells must be evicted from the old
    shard's indexes (and any cached lines), then served correctly from
    the new owner."""
    from repro.service import QueryRequest, QueryService
    from repro.shard import ShardedGeoSocialEngine

    graph, locations = random_instance(100, seed=421, coverage=0.9)
    sharded = ShardedGeoSocialEngine(
        graph, locations, n_shards=4, num_landmarks=3, s=3, seed=3
    )
    service = QueryService(sharded, cache_size=256, max_workers=1)
    located = list(sharded.locations.located_users())
    mover = located[0]
    old_shard = sharded.shard_of_user(mover)
    old_engine = sharded._engines[old_shard]
    assert mover in old_engine.grid and mover in old_engine.index_users

    # Cache a line for the mover, then push them into a different cell.
    assert not service.query(QueryRequest(mover, k=5, alpha=0.3)).cached
    assert service.query(QueryRequest(mover, k=5, alpha=0.3)).cached
    part = sharded.partitioner
    x, y = sharded.locations.get(mover)
    target = next(
        (tx, ty)
        for tx in (0.05, 0.5, 0.95)
        for ty in (0.05, 0.5, 0.95)
        if part.shard_of(tx, ty) != old_shard
    )
    service.move_user(mover, *target)

    new_shard = sharded.shard_of_user(mover)
    assert new_shard != old_shard
    # Old shard fully forgets the mover (grid, aggregate, membership)...
    assert mover not in old_engine.grid
    assert mover not in old_engine.index_users
    assert mover not in set(old_engine.aggregate.grid.leaf_grid._cell_of_user)
    # ... the new owner indexes them ...
    new_engine = sharded._engines[new_shard]
    assert mover in new_engine.grid and mover in new_engine.index_users
    # ... the stale cache line is gone, and the fresh answer is exact.
    response = service.query(QueryRequest(mover, k=5, alpha=0.3))
    assert not response.cached
    fresh = GeoSocialEngine(
        graph,
        sharded.locations.copy(),
        num_landmarks=3,
        s=3,
        seed=3,
        normalization=sharded.normalization,
    )
    assert response.result.users == fresh.query(mover, k=5, alpha=0.3).users

    # The same holds for every method and for other query users whose
    # result could have contained the mover.
    for q in located[1:5]:
        for method in ("spa", "tsa", "ais"):
            got = sharded.query(q, k=6, alpha=0.4, method=method)
            assert got.users == fresh.query(q, k=6, alpha=0.4, method=method).users
    service.close()
    sharded.close()
