"""Shared fixtures and helpers for the SSRQ test suite."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.engine import GeoSocialEngine
from repro.datasets.generators import erdos_renyi_edges
from repro.datasets.synthetic import GeoSocialDataset, build_dataset
from repro.graph.socialgraph import SocialGraph
from repro.spatial.point import LocationTable

INF = math.inf


def random_graph(n: int, avg_degree: float, seed: int) -> SocialGraph:
    """Small random weighted graph (uniform weights in (0, 1]).

    ``avg_degree`` is clamped to what ``n`` vertices can support, so
    property tests may pass arbitrary sizes.
    """
    avg_degree = min(avg_degree, max(n - 1, 0))
    if n < 2 or avg_degree <= 0:
        return SocialGraph.from_edges(n, [])
    rng = random.Random(seed)
    edges = [
        (u, v, rng.uniform(0.05, 1.0)) for u, v in erdos_renyi_edges(n, avg_degree, seed)
    ]
    return SocialGraph.from_edges(n, edges)


def random_locations(n: int, seed: int, coverage: float = 1.0) -> LocationTable:
    rng = random.Random(seed)
    table = LocationTable.empty(n)
    for u in range(n):
        if rng.random() < coverage:
            table.set(u, rng.random(), rng.random())
    return table


def random_instance(n: int, seed: int, coverage: float = 1.0, avg_degree: float = 6.0):
    """A (graph, locations) pair for randomized correctness tests."""
    return random_graph(n, avg_degree, seed), random_locations(n, seed + 1, coverage)


def assert_same_scores(result_a, result_b, tol: float = 1e-9) -> None:
    """Two SSRQ results are equivalent iff their score sequences match
    (ties at the boundary may legitimately pick different users)."""
    scores_a = [nb.score for nb in result_a]
    scores_b = [nb.score for nb in result_b]
    assert len(scores_a) == len(scores_b), (
        f"result sizes differ: {len(scores_a)} vs {len(scores_b)}\n{scores_a}\n{scores_b}"
    )
    for i, (a, b) in enumerate(zip(scores_a, scores_b)):
        assert abs(a - b) <= tol, f"score {i} differs: {a} vs {b}"


@pytest.fixture(scope="session")
def small_dataset() -> GeoSocialDataset:
    """A ~600-user calibrated dataset with partial location coverage."""
    return build_dataset("test-small", n=600, avg_degree=8.0, coverage=0.7, seed=42)


@pytest.fixture(scope="session")
def small_engine(small_dataset) -> GeoSocialEngine:
    return GeoSocialEngine.from_dataset(small_dataset, num_landmarks=4, s=5, seed=1)


@pytest.fixture(scope="session")
def query_users(small_engine) -> list[int]:
    """A deterministic sample of located query users."""
    located = list(small_engine.locations.located_users())
    rng = random.Random(9)
    return rng.sample(located, 8)
