"""Tests for the TA / NRA / CA / Quick-Combine substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topk.ca import combined_algorithm
from repro.topk.nra import no_random_access
from repro.topk.quick_combine import QuickCombinePolicy, RoundRobinPolicy
from repro.topk.sources import SortedSource
from repro.topk.ta import threshold_algorithm


def combine_sum(values):
    return sum(values)


def make_sources(rows: dict[int, tuple[float, ...]], m: int) -> list[SortedSource]:
    return [SortedSource({i: row[j] for i, row in rows.items()}) for j in range(m)]


def brute(rows, k):
    scored = sorted((sum(row), i) for i, row in rows.items())
    return scored[:k]


def random_rows(rng, n, m):
    return {i: tuple(rng.uniform(0, 10) for _ in range(m)) for i in range(n)}


class TestSortedSource:
    def test_sorted_access_ascending(self):
        src = SortedSource({1: 3.0, 2: 1.0, 3: 2.0})
        assert [src.next() for _ in range(3)] == [(2, 1.0), (3, 2.0), (1, 3.0)]
        assert src.next() is None
        assert src.exhausted

    def test_access_counters(self):
        src = SortedSource({1: 1.0, 2: 2.0})
        src.next()
        src.get(2)
        assert src.sorted_accesses == 1
        assert src.random_accesses == 1

    def test_last_value_tracks_cursor(self):
        src = SortedSource({1: 1.0, 2: 2.0})
        assert src.last_value == 0.0
        src.next()
        assert src.last_value == 1.0

    def test_random_access_missing_is_inf(self):
        src = SortedSource({1: 1.0})
        assert src.get(9) == float("inf")


@pytest.mark.parametrize("algo", [threshold_algorithm, no_random_access, combined_algorithm])
class TestAlgorithmsAgainstBruteForce:
    def test_small_fixed(self, algo):
        rows = {0: (1.0, 5.0), 1: (2.0, 1.0), 2: (9.0, 9.0), 3: (0.5, 0.5)}
        got = algo(make_sources(rows, 2), combine_sum, 2)
        expected = brute(rows, 2)
        assert [s for s, _ in got] == pytest.approx([s for s, _ in expected])
        assert {i for _, i in got} == {i for _, i in expected}

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_instances(self, algo, seed):
        rng = random.Random(seed)
        rows = random_rows(rng, rng.randint(5, 60), rng.randint(2, 4))
        k = rng.randint(1, 5)
        got = algo(make_sources(rows, len(next(iter(rows.values())))), combine_sum, k)
        expected = brute(rows, k)
        assert [round(s, 9) for s, _ in got] == [round(s, 9) for s, _ in expected]

    def test_k_exceeds_population(self, algo):
        rows = {0: (1.0,), 1: (2.0,)}
        got = algo(make_sources(rows, 1), combine_sum, 10)
        assert len(got) == 2

    def test_invalid_k(self, algo):
        with pytest.raises(ValueError):
            algo([], combine_sum, 0)


class TestEarlyTermination:
    def test_ta_stops_before_exhausting_sources(self):
        rng = random.Random(9)
        rows = random_rows(rng, 200, 2)
        sources = make_sources(rows, 2)
        threshold_algorithm(sources, combine_sum, 1)
        assert any(s.sorted_accesses < len(s) for s in sources)

    def test_ca_uses_fewer_random_accesses_than_ta(self):
        rng = random.Random(10)
        rows = random_rows(rng, 150, 2)
        ta_sources = make_sources(rows, 2)
        threshold_algorithm(ta_sources, combine_sum, 3)
        ca_sources = make_sources(rows, 2)
        combined_algorithm(ca_sources, combine_sum, 3, kappa=10)
        assert sum(s.random_accesses for s in ca_sources) <= sum(
            s.random_accesses for s in ta_sources
        )

    def test_nra_uses_no_random_access(self):
        rng = random.Random(11)
        rows = random_rows(rng, 100, 3)
        sources = make_sources(rows, 3)
        no_random_access(sources, combine_sum, 3)
        assert all(s.random_accesses == 0 for s in sources)


class TestQuickCombine:
    def test_prefers_faster_growing_stream(self):
        policy = QuickCombinePolicy((0.5, 0.5))
        for i in range(4):
            policy.observe(0, i * 10.0)  # fast riser
            policy.observe(1, i * 0.1)  # slow riser
        assert policy.choose((True, True)) == 0

    def test_weights_scale_preference(self):
        policy = QuickCombinePolicy((0.01, 0.99))
        for i in range(4):
            policy.observe(0, i * 1.0)
            policy.observe(1, i * 1.0)
        assert policy.choose((True, True)) == 1

    def test_unobserved_streams_prioritised(self):
        policy = QuickCombinePolicy((0.5, 0.5))
        for i in range(4):
            policy.observe(0, float(i))
        assert policy.choose((True, True)) == 1

    def test_skips_inactive(self):
        policy = QuickCombinePolicy((0.5, 0.5))
        assert policy.choose((False, True)) == 1
        with pytest.raises(ValueError):
            policy.choose((False, False))

    def test_validation(self):
        with pytest.raises(ValueError):
            QuickCombinePolicy(())
        with pytest.raises(ValueError):
            QuickCombinePolicy((0.5, -0.1))
        with pytest.raises(ValueError):
            QuickCombinePolicy((1.0,), window=1)


class TestRoundRobin:
    def test_alternates(self):
        policy = RoundRobinPolicy(2)
        picks = [policy.choose((True, True)) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_skips_inactive(self):
        policy = RoundRobinPolicy(2)
        assert policy.choose((False, True)) == 1
        assert policy.choose((False, True)) == 1

    def test_no_active_raises(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(2).choose((False, False))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_all_three_match_brute_force(seed):
    rng = random.Random(seed)
    rows = random_rows(rng, rng.randint(3, 40), rng.randint(1, 3))
    m = len(next(iter(rows.values())))
    k = rng.randint(1, 6)
    expected = [round(s, 9) for s, _ in brute(rows, k)]
    for algo in (threshold_algorithm, no_random_access, combined_algorithm):
        got = algo(make_sources(rows, m), combine_sum, k)
        assert [round(s, 9) for s, _ in got] == expected
