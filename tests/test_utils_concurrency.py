"""``repro.utils.concurrency`` — the readers-writer lock guarding
every engine's indexes and the lazy worker pool behind sharded
scatter-gather.  Focus: exclusion semantics, the shutdown/exception
paths of :class:`TaskPool`, and the inline fast paths that must never
spawn threads."""

from __future__ import annotations

import threading
import time

import pytest

from repro.utils.concurrency import ReadWriteLock, TaskPool


def run_in_thread(fn):
    t = threading.Thread(target=fn, daemon=True)
    t.start()
    return t


class TestReadWriteLock:
    def test_many_readers_hold_concurrently(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # deadlocks (and times out) unless all 4 overlap

        threads = [run_in_thread(reader) for _ in range(4)]
        for t in threads:
            t.join(timeout=5)
            assert not t.is_alive()

    def test_writer_excludes_readers_and_writers(self):
        lock = ReadWriteLock()
        order = []
        writing = threading.Event()

        def writer():
            with lock.write_locked():
                writing.set()
                time.sleep(0.05)
                order.append("writer-done")

        def reader():
            writing.wait(timeout=5)
            with lock.read_locked():
                order.append("reader")

        w = run_in_thread(writer)
        r = run_in_thread(reader)
        w.join(timeout=5)
        r.join(timeout=5)
        assert order == ["writer-done", "reader"]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: once a writer queues behind the active
        reader, later readers wait behind the writer."""
        lock = ReadWriteLock()
        order = []
        reader_in = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                writer_waiting.wait(timeout=5)
                time.sleep(0.05)
                order.append("reader-1")

        def writer():
            reader_in.wait(timeout=5)
            writer_waiting.set()  # just before blocking on acquire_write
            with lock.write_locked():
                order.append("writer")

        def second_reader():
            writer_waiting.wait(timeout=5)
            time.sleep(0.01)  # let the writer reach its wait first
            with lock.read_locked():
                order.append("reader-2")

        threads = [run_in_thread(f) for f in (first_reader, writer, second_reader)]
        for t in threads:
            t.join(timeout=5)
        assert order == ["reader-1", "writer", "reader-2"]

    def test_read_lock_released_on_exception(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.read_locked():
                raise RuntimeError("boom")
        with lock.write_locked():  # would deadlock if the read leaked
            pass

    def test_write_lock_released_on_exception(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            with lock.write_locked():
                raise RuntimeError("boom")
        with lock.read_locked():
            pass


class TestTaskPool:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="max_workers"):
            TaskPool(max_workers=0)

    def test_map_preserves_item_order(self):
        pool = TaskPool(max_workers=4)
        try:
            # staggered sleeps: out-of-order completion, in-order results
            items = [0.03, 0.0, 0.02, 0.0, 0.01]

            def tag(delay):
                time.sleep(delay)
                return delay

            assert pool.map(tag, items) == items
        finally:
            pool.close()

    def test_single_worker_never_creates_a_pool(self):
        pool = TaskPool(max_workers=1)
        assert pool.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]
        assert pool._pool is None
        pool.close()

    def test_single_item_runs_inline(self):
        pool = TaskPool(max_workers=4)
        main = threading.current_thread().name
        assert pool.map(lambda _: threading.current_thread().name, ["x"]) == [main]
        assert pool._pool is None  # creation is deferred until truly needed
        pool.close()

    def test_parallel_calls_use_worker_threads(self):
        pool = TaskPool(max_workers=2, thread_name_prefix="probe")
        try:
            names = pool.map(lambda _: threading.current_thread().name, range(4))
            assert all(name.startswith("probe") for name in names)
        finally:
            pool.close()

    def test_exception_in_fn_propagates(self):
        pool = TaskPool(max_workers=2)
        try:
            def explode(v):
                if v == 2:
                    raise KeyError("item 2")
                return v

            with pytest.raises(KeyError):
                pool.map(explode, [1, 2, 3])
        finally:
            pool.close()

    def test_runtime_error_from_fn_is_not_swallowed(self):
        """The shutdown-race fallback must not catch RuntimeErrors the
        mapped function itself raises."""
        pool = TaskPool(max_workers=2)
        try:
            def explode(v):
                raise RuntimeError("from fn, not from shutdown")

            with pytest.raises(RuntimeError, match="from fn"):
                pool.map(explode, [1, 2, 3])
        finally:
            pool.close()

    def test_close_is_idempotent_and_observable(self):
        pool = TaskPool(max_workers=2)
        assert not pool.closed
        pool.map(lambda v: v, [1, 2])  # force pool creation
        pool.close()
        pool.close()
        assert pool.closed
        assert pool._pool is None

    def test_map_after_close_degrades_to_inline(self):
        """A caller racing ``close`` gets sequential execution, not a
        failure — the shard layer relies on this during shutdown."""
        pool = TaskPool(max_workers=4)
        pool.map(lambda v: v, [1, 2])
        pool.close()
        main = threading.current_thread().name
        names = pool.map(lambda _: threading.current_thread().name, range(3))
        assert names == [main] * 3

    def test_close_without_use_never_spawns(self):
        pool = TaskPool(max_workers=8)
        pool.close()
        assert pool._pool is None
        assert pool.map(lambda v: v * 2, [1, 2, 3]) == [2, 4, 6]
