"""Tests for the engine facade: dispatch, validation, dynamic updates."""

import math

import pytest

from repro.core.engine import METHODS, GeoSocialEngine
from tests.conftest import assert_same_scores, random_instance

INF = math.inf


@pytest.fixture()
def engine():
    graph, locations = random_instance(150, seed=351, coverage=0.8)
    return GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=2)


class TestDispatch:
    def test_unknown_method(self, engine):
        user = next(iter(engine.located_users()))
        with pytest.raises(ValueError, match="unknown method"):
            engine.query(user, method="magic")

    def test_invalid_alpha(self, engine):
        user = next(iter(engine.located_users()))
        with pytest.raises(ValueError, match="alpha"):
            engine.query(user, alpha=1.5)

    def test_invalid_user(self, engine):
        with pytest.raises(ValueError):
            engine.query(10_000)

    def test_searchers_cached(self, engine):
        assert engine.searcher("ais") is engine.searcher("ais")
        assert engine.searcher("ais-cache", t=10) is engine.searcher("ais-cache", t=10)
        assert engine.searcher("ais-cache", t=10) is not engine.searcher("ais-cache", t=20)

    def test_methods_constant_covers_all_searchers(self, engine):
        user = next(iter(engine.located_users()))
        for method in METHODS:
            result = engine.query(user, k=3, alpha=0.3, method=method, t=10)
            assert len(result) <= 3

    def test_batch_query_is_a_deprecated_alias_of_query_many(self, engine):
        """The historical batch_query/query_many drift is resolved:
        query_many is the (service-backed) batch API, batch_query a
        deprecated alias returning identical results."""
        users = list(engine.located_users())[:4]
        with pytest.warns(DeprecationWarning, match="query_many"):
            results = engine.batch_query(users, k=5, alpha=0.3, method="ais")
        assert [r.query_user for r in results] == users
        via_service = engine.query_many(users, k=5, alpha=0.3, method="ais")
        sequential = [engine.query(u, k=5, alpha=0.3, method="ais") for u in users]
        for deprecated, modern, loop in zip(results, via_service, sequential):
            assert deprecated.users == modern.users == loop.users
            assert deprecated.scores == modern.scores == loop.scores

    def test_mismatched_location_table_rejected(self):
        graph, locations = random_instance(50, seed=352)
        from repro.spatial.point import LocationTable

        with pytest.raises(ValueError, match="covers"):
            GeoSocialEngine(graph, LocationTable.empty(10))

    def test_from_dataset(self):
        from repro.datasets.synthetic import build_dataset

        ds = build_dataset("x", n=100, avg_degree=6.0, seed=3)
        engine = GeoSocialEngine.from_dataset(ds, num_landmarks=2, s=3)
        assert engine.graph.n == 100

    def test_repr(self, engine):
        assert "GeoSocialEngine" in repr(engine)


class TestDynamicLocations:
    def test_move_then_query_matches_bruteforce(self, engine):
        users = list(engine.located_users())[:6]
        mover = users[0]
        engine.move_user(mover, 0.123, 0.456)
        assert engine.locations.get(mover) == (0.123, 0.456)
        for q in users[1:4]:
            expected = engine.query(q, k=10, alpha=0.3, method="bruteforce")
            for method in ("spa", "tsa", "ais"):
                assert_same_scores(expected, engine.query(q, k=10, alpha=0.3, method=method))

    def test_move_out_of_bbox_still_correct(self, engine):
        users = list(engine.located_users())[:6]
        engine.move_user(users[0], 7.5, -3.5)  # far outside the build box
        for q in users[1:4]:
            expected = engine.query(q, k=10, alpha=0.3, method="bruteforce")
            for method in ("spa", "tsa", "ais"):
                assert_same_scores(expected, engine.query(q, k=10, alpha=0.3, method=method))

    def test_locate_previously_unknown_user(self, engine):
        newcomer = next(
            u for u in range(engine.graph.n) if not engine.locations.has_location(u)
        )
        engine.move_user(newcomer, 0.5, 0.5)
        q = next(iter(engine.located_users()))
        expected = engine.query(q, k=10, alpha=0.3, method="bruteforce")
        for method in ("spa", "ais"):
            assert_same_scores(expected, engine.query(q, k=10, alpha=0.3, method=method))

    def test_forget_location(self, engine):
        users = list(engine.located_users())[:5]
        gone = users[0]
        engine.forget_location(gone)
        assert not engine.locations.has_location(gone)
        assert gone not in engine.grid
        assert gone not in engine.aggregate
        q = users[1]
        expected = engine.query(q, k=10, alpha=0.3, method="bruteforce")
        assert gone not in expected.users or engine.query(q, k=10, alpha=0.3).users
        for method in ("spa", "ais"):
            assert_same_scores(expected, engine.query(q, k=10, alpha=0.3, method=method))

    def test_forget_unlocated_is_noop(self, engine):
        unlocated = next(
            u for u in range(engine.graph.n) if not engine.locations.has_location(u)
        )
        engine.forget_location(unlocated)  # must not raise

    def test_many_moves_storm(self, engine):
        import random

        rng = random.Random(5)
        for _ in range(60):
            user = rng.randrange(engine.graph.n)
            engine.move_user(user, rng.random(), rng.random())
        q = next(iter(engine.located_users()))
        expected = engine.query(q, k=10, alpha=0.3, method="bruteforce")
        for method in ("spa", "tsa", "ais"):
            assert_same_scores(expected, engine.query(q, k=10, alpha=0.3, method=method))
