"""Tests for location assignment strategies."""

import math

import pytest

from repro.datasets.locations import (
    apply_coverage,
    clustered_locations,
    correlated_locations,
    permuted_locations,
    uniform_locations,
)
from repro.graph.traversal import dijkstra_distances
from tests.conftest import random_graph

INF = math.inf


def pearson(xs, ys):
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(xs, ys))
    vx = math.sqrt(sum((a - mx) ** 2 for a in xs))
    vy = math.sqrt(sum((b - my) ** 2 for b in ys))
    return cov / (vx * vy) if vx and vy else 0.0


class TestBasicGenerators:
    def test_uniform_in_unit_square(self):
        table = uniform_locations(500, seed=1)
        assert table.n_located == 500
        for u in table.located_users():
            x, y = table.get(u)
            assert 0 <= x <= 1 and 0 <= y <= 1

    def test_clustered_is_clustered(self):
        """Clustered layout must concentrate mass locally: the mean
        nearest-neighbour distance is far below the uniform layout's."""

        def mean_nn_distance(table, sample=120):
            total = 0.0
            users = list(table.located_users())[:sample]
            for u in users:
                total += min(table.distance(u, v) for v in table.located_users() if v != u)
            return total / len(users)

        clustered = clustered_locations(400, clusters=5, spread=0.02, seed=2)
        uniform = uniform_locations(400, seed=2)
        assert mean_nn_distance(clustered) < mean_nn_distance(uniform) * 0.6

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered_locations(10, clusters=0)
        with pytest.raises(ValueError):
            clustered_locations(10, spread=0.0)

    def test_coverage_fraction(self):
        table = apply_coverage(uniform_locations(1000, seed=4), 0.6, seed=5)
        assert table.n_located == 600

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            apply_coverage(uniform_locations(10, seed=1), 1.5)

    def test_permutation_preserves_multiset(self):
        table = uniform_locations(50, seed=6)
        shuffled = permuted_locations(table, seed=7)
        original = sorted((table.xs[u], table.ys[u]) for u in table.located_users())
        permuted = sorted((shuffled.xs[u], shuffled.ys[u]) for u in shuffled.located_users())
        assert original == permuted
        assert shuffled.n_located == table.n_located


class TestCorrelatedLocations:
    @pytest.fixture(scope="class")
    def graph(self):
        return random_graph(300, 6.0, seed=8)

    def _correlation(self, graph, table, anchor):
        social = dijkstra_distances(graph, anchor)
        xs, ys = [], []
        ax, ay = table.get(anchor)
        for v, p in social.items():
            if v == anchor or not table.has_location(v):
                continue
            xs.append(p)
            ys.append(table.distance_to(v, ax, ay))
        return pearson(xs, ys)

    def test_positive_correlation(self, graph):
        table = correlated_locations(graph, anchor=0, rho=1.0, seed=9)
        assert self._correlation(graph, table, 0) > 0.5

    def test_negative_correlation(self, graph):
        table = correlated_locations(graph, anchor=0, rho=-1.0, seed=9)
        assert self._correlation(graph, table, 0) < -0.5

    def test_independent_after_permutation(self, graph):
        table = permuted_locations(
            correlated_locations(graph, anchor=0, rho=1.0, seed=9), seed=10
        )
        assert abs(self._correlation(graph, table, 0)) < 0.3

    def test_anchor_at_center(self, graph):
        table = correlated_locations(graph, anchor=0, rho=1.0, seed=9)
        assert table.get(0) == (0.5, 0.5)

    def test_rho_zero_rejected(self, graph):
        with pytest.raises(ValueError):
            correlated_locations(graph, anchor=0, rho=0.0)

    def test_unreachable_vertices_unlocated(self):
        from repro.graph.socialgraph import SocialGraph

        g = SocialGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        table = correlated_locations(g, anchor=0, rho=1.0, seed=11)
        assert table.has_location(1)
        assert not table.has_location(2)
        assert not table.has_location(3)
