"""Unit tests for the adaptive planner stack: static rules, feature
extraction and bucketing, the cost model's coarse-to-fine fallback,
epsilon-greedy resolution with calibration, the unified ``Searcher``
execution-stats contract, and planner persistence across engine
rebuilds."""

from __future__ import annotations

import pytest

from repro.core.engine import AUTO, METHODS, FORWARD_DETERMINISTIC_METHODS, GeoSocialEngine
from repro.core.searcher import Searcher
from repro.plan import (
    DEFAULT_CANDIDATES,
    AdaptivePlanner,
    CostModel,
    QueryFeatures,
    extract_features,
    route_method,
    static_choice,
)
from repro.plan.features import local_cell_density
from repro.service import QueryRequest, QueryService
from repro.shard import ShardedGeoSocialEngine
from tests.conftest import random_instance


@pytest.fixture(scope="module")
def engine():
    graph, locations = random_instance(250, seed=11, coverage=0.8)
    return GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=5)


# -- rules -------------------------------------------------------------


class TestRules:
    def test_route_method_matches_legacy_tables(self):
        for method in METHODS:
            assert route_method(method, 0.4) == method
        assert route_method("tsa", 0.0) == "spa"
        assert route_method("tsa-ch", 0.0) == "spa-ch"
        assert route_method("ais", 1.0) == "sfa"
        assert route_method("spa-ch", 1.0) == "sfa-ch"
        assert route_method("bruteforce", 0.0) == "bruteforce"
        assert route_method("bruteforce", 1.0) == "bruteforce"

    def test_engine_reexports_route_method(self):
        from repro.core.engine import route_method as engine_route

        assert engine_route is route_method

    def test_static_choice_endpoints_only(self):
        assert static_choice(0.0) == "spa"
        assert static_choice(1.0) == "sfa"
        assert static_choice(0.5) is None
        assert static_choice(1e-9) is None

    def test_default_candidates_are_forward_deterministic(self):
        """The default auto candidate set must stay inside the
        forward-deterministic families: that is what makes auto results
        bit-identical to bruteforce and auto subscriptions repairable."""
        assert set(DEFAULT_CANDIDATES) <= FORWARD_DETERMINISTIC_METHODS
        assert set(DEFAULT_CANDIDATES) <= set(METHODS)


# -- features ----------------------------------------------------------


class TestFeatures:
    def test_bucket_is_small_and_stable(self):
        f = QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5)
        assert f.bucket() == (2, 1, 3, 1, 0, 0, 0)
        assert QueryFeatures(k=1, alpha=0.01, degree=0, cell_density=0.0).bucket() == (
            0,
            0,
            0,
            0,
            0,
            0,
            0,
        )
        # buckets saturate instead of growing unboundedly
        huge = QueryFeatures(
            k=10**6, alpha=0.99, degree=10**9, cell_density=1e9, fanout=10**3
        )
        assert huge.bucket() == (3, 3, 6, 3, 3, 0, 0)

    def test_social_hit_feature_separates_warm_from_cold_regime(self):
        """A cached full social column collapses forward-deterministic
        methods to one dense scan, so warm and cold executions of the
        same query must key different cost-model buckets."""
        base = QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5)
        warm = QueryFeatures(
            k=30, alpha=0.3, degree=12, cell_density=1.5, social_hit=True
        )
        assert base.bucket() != warm.bucket()
        assert base.bucket()[:6] == warm.bucket()[:6]

    def test_budget_feature_separates_exact_from_approx_regime(self):
        """budget occupies the last bucket slot; unset and 0 land in
        bucket 0 (the exact-required regime) so cost observations from
        exact-only traffic never leak into budgeted buckets."""
        base = QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5)
        zero = QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5, budget=0.0)
        budgeted = QueryFeatures(
            k=30, alpha=0.3, degree=12, cell_density=1.5, budget=0.05
        )
        assert base.bucket() == zero.bucket()
        assert budgeted.bucket() != base.bucket()
        assert budgeted.bucket()[:5] == base.bucket()[:5]

    def test_fanout_feature_separates_sharded_costs(self):
        """The same query features at different shard fan-outs must key
        different cost-model buckets — that is what lets auto learn
        scatter economics separately from single-engine economics."""
        base = QueryFeatures(k=30, alpha=0.3, degree=12, cell_density=1.5)
        sharded = QueryFeatures(
            k=30, alpha=0.3, degree=12, cell_density=1.5, fanout=4
        )
        assert base.bucket() != sharded.bucket()
        assert base.bucket()[:4] == sharded.bucket()[:4]

    def test_extract_features_single_engine(self, engine):
        user = next(iter(engine.locations.located_users()))
        f = extract_features(engine, user, 10, 0.3)
        assert f.k == 10 and f.alpha == 0.3
        assert f.degree == engine.graph.degree(user)
        assert f.cell_density > 0.0

    def test_extract_features_unlocated_user_is_safe(self, engine):
        unlocated = [
            u for u in range(engine.graph.n) if not engine.locations.has_location(u)
        ]
        assert unlocated, "fixture should have partial coverage"
        f = extract_features(engine, unlocated[0], 10, 0.3)
        assert f.cell_density == 0.0

    def test_cell_density_sharded_probes_owning_shard(self):
        graph, locations = random_instance(200, seed=3, coverage=0.9)
        sharded = ShardedGeoSocialEngine(
            graph, locations, n_shards=4, num_landmarks=3, s=4, seed=5, max_workers=1
        )
        single = GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=5)
        user = next(iter(locations.located_users()))
        assert local_cell_density(sharded, user) > 0.0
        assert local_cell_density(single, user) > 0.0


# -- cost model --------------------------------------------------------


class TestCostModel:
    def test_coarse_to_fine_fallback(self):
        model = CostModel()
        seen = (1, 2, 3, 0)
        model.observe(seen, "spa", 0.2)
        # exact bucket
        assert model.estimate(seen, "spa") == pytest.approx(0.2)
        # same alpha bucket, different everything else -> alpha marginal
        assert model.estimate((0, 2, 0, 3), "spa") == pytest.approx(0.2)
        # different alpha bucket -> global
        assert model.estimate((0, 0, 0, 0), "spa") == pytest.approx(0.2)
        # untouched method -> None (planner explores it)
        assert model.estimate(seen, "tsa") is None

    def test_ewma_moves_toward_new_costs(self):
        model = CostModel(decay=0.5)
        b = (0, 1, 0, 0)
        model.observe(b, "sfa", 1.0)
        model.observe(b, "sfa", 0.0)
        assert model.estimate(b, "sfa") == pytest.approx(0.5)
        assert model.observations(b) == 2

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            CostModel(decay=0.0)
        with pytest.raises(ValueError):
            CostModel(decay=1.5)

    def test_zero_cost_observation_is_floored(self):
        """Satellite regression: a coarse clock can hand the model an
        elapsed time of exactly 0.0; stored raw, that arm's estimate
        would be an unbeatable min() forever.  The observation is
        floored to a tiny positive cost the EWMA can move off of."""
        model = CostModel(decay=0.5)
        b = (0, 1, 0, 0, 0, 0)
        model.observe(b, "spa", 0.0)
        floored = model.estimate(b, "spa")
        assert floored is not None and floored > 0.0
        model.observe(b, "spa", 0.4)
        assert model.estimate(b, "spa") == pytest.approx(0.2, rel=1e-6)


# -- planner -----------------------------------------------------------


class TestPlanner:
    def test_explicit_methods_pass_through(self, engine):
        planner = AdaptivePlanner(calibrate=False)
        decision = planner.resolve(engine, 0, 10, 0.3, "tsa")
        assert decision.method == "tsa" and not decision.auto
        decision = planner.resolve(engine, 0, 10, 0.0, "tsa")
        assert decision.method == "spa" and not decision.auto

    def test_static_endpoint_resolutions(self, engine):
        planner = AdaptivePlanner(calibrate=False)
        assert planner.resolve(engine, 0, 10, 0.0, AUTO).method == "spa"
        assert planner.resolve(engine, 0, 10, 1.0, AUTO).method == "sfa"
        assert planner.stats.static_routes == 2

    def test_greedy_picks_cheapest_learned_method(self, engine):
        planner = AdaptivePlanner(calibrate=False, epsilon=0.0)
        user = next(iter(engine.locations.located_users()))
        bucket = extract_features(engine, user, 10, 0.5).bucket()
        for method, cost in (("sfa", 0.9), ("spa", 0.1), ("tsa", 0.5), ("tsa-qc", 0.7)):
            planner.cost.observe(bucket, method, cost)
        decision = planner.resolve(engine, user, 10, 0.5, AUTO)
        assert decision.method == "spa" and decision.auto and not decision.explored
        assert decision.bucket == bucket

    def test_unexplored_candidates_go_first(self, engine):
        planner = AdaptivePlanner(calibrate=False, epsilon=0.0)
        user = next(iter(engine.locations.located_users()))
        resolved = set()
        for _ in range(len(DEFAULT_CANDIDATES)):
            decision = planner.resolve(engine, user, 10, 0.5, AUTO)
            assert decision.explored
            resolved.add(decision.method)
            planner.observe(decision, 0.5)
        assert resolved == set(DEFAULT_CANDIDATES)

    def test_observe_ignores_static_and_explicit(self, engine):
        planner = AdaptivePlanner(calibrate=False)
        planner.observe(planner.resolve(engine, 0, 10, 0.0, AUTO), 1.0)
        planner.observe(planner.resolve(engine, 0, 10, 0.3, "tsa"), 1.0)
        assert planner.stats.observations == 0

    def test_calibration_seeds_every_candidate(self, engine):
        planner = AdaptivePlanner(seed=1)
        executed = planner.calibrate(engine)
        assert executed > 0
        assert planner.calibrate(engine) == 0  # idempotent
        snapshot = planner.cost.snapshot()
        assert set(snapshot["global"]) == set(DEFAULT_CANDIDATES)
        # every interior alpha bucket has every candidate seeded
        alphas = {key.split(":")[0] for key in snapshot["alpha"]}
        assert alphas == {"a0", "a1", "a2", "a3"}

    def test_auto_query_feeds_feedback_loop(self, engine):
        engine.planner = AdaptivePlanner(seed=2)
        before = engine.planner.stats.observations
        result = engine.query(1, k=5, alpha=0.5, method=AUTO)
        assert result.method in DEFAULT_CANDIDATES
        assert engine.planner.stats.observations == before + 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptivePlanner(candidates=())
        with pytest.raises(ValueError):
            AdaptivePlanner(epsilon=1.5)
        with pytest.raises(ValueError, match="exact"):
            AdaptivePlanner(candidates=("approx",))

    def test_cold_bucket_zero_cost_neither_starves_nor_freezes(self, engine):
        """Satellite regression, planner level: one 0.0-elapsed
        observation must not rob the never-observed candidates of their
        exploration turn, and once the arm's real cost arrives the
        floored artifact does not keep winning min()."""
        planner = AdaptivePlanner(calibrate=False, epsilon=0.0)
        user = next(iter(engine.locations.located_users()))
        bucket = extract_features(engine, user, 10, 0.5).bucket()
        planner.cost.observe(bucket, "tsa", 0.0)  # coarse-clock artifact
        resolved = set()
        for _ in range(len(DEFAULT_CANDIDATES) - 1):
            decision = planner.resolve(engine, user, 10, 0.5, AUTO)
            assert decision.explored, "unexplored arms must still go first"
            resolved.add(decision.method)
            planner.observe(decision, 0.5)
        assert resolved == set(DEFAULT_CANDIDATES) - {"tsa"}
        # greedy now picks the floored arm (cheapest estimate on record)
        decision = planner.resolve(engine, user, 10, 0.5, AUTO)
        assert decision.method == "tsa" and not decision.explored
        # ... but its real cost moves the EWMA off the floor: the
        # artifact does not freeze the arm as an eternal 0.0 winner
        planner.observe(decision, 2.0)
        decision = planner.resolve(engine, user, 10, 0.5, AUTO)
        assert decision.method != "tsa"

    def test_cost_tie_breaks_toward_canonical_candidate_order(self, engine):
        """An exact cost tie resolves to the earliest candidate in
        canonical order — deterministic, pinned."""
        planner = AdaptivePlanner(calibrate=False, epsilon=0.0)
        user = next(iter(engine.locations.located_users()))
        bucket = extract_features(engine, user, 10, 0.5).bucket()
        for method in DEFAULT_CANDIDATES:
            planner.cost.observe(bucket, method, 0.5)
        decision = planner.resolve(engine, user, 10, 0.5, AUTO)
        assert decision.method == DEFAULT_CANDIDATES[0]
        assert not decision.explored

    def test_budget_gates_approx_into_the_candidate_set(self, engine):
        """Exact-required resolutions (budget unset/0) never see
        ``approx``; a budgeted resolution the sketch certifies adds it
        (explored first like any cold arm, then greedily winnable)."""
        planner = AdaptivePlanner(calibrate=False, epsilon=0.0)
        user = next(iter(engine.locations.located_users()))
        bucket = extract_features(engine, user, 10, 0.5, 1.0).bucket()
        for method in DEFAULT_CANDIDATES:
            planner.cost.observe(bucket, method, 0.5)
        # generous budget: the sketch certifies it; approx is the one
        # cold arm left and gets its exploration turn
        decision = planner.resolve(engine, user, 10, 0.5, AUTO, budget=1.0)
        assert decision.method == "approx" and decision.explored
        planner.observe(decision, 0.01)
        decision = planner.resolve(engine, user, 10, 0.5, AUTO, budget=1.0)
        assert decision.method == "approx" and not decision.explored
        # the exact-required form of the same query never resolves to it
        for budget in (None, 0.0):
            decision = planner.resolve(engine, user, 10, 0.5, AUTO, budget=budget)
            assert decision.method in DEFAULT_CANDIDATES

    def test_inadmissible_budget_strips_approx(self, engine):
        """A positive budget smaller than the sketch's empirical error
        estimate keeps the resolution exact-only."""
        sketch = engine.sketch
        w_social = 0.5 / engine.normalization.p_max
        tiny = w_social * sketch.empirical_half / 2.0
        assert not sketch.admissible(w_social, tiny)
        planner = AdaptivePlanner(calibrate=False, epsilon=0.0)
        user = next(iter(engine.locations.located_users()))
        for _ in range(len(DEFAULT_CANDIDATES) + 2):
            decision = planner.resolve(engine, user, 10, 0.5, AUTO, budget=tiny)
            assert decision.method in DEFAULT_CANDIDATES
            planner.observe(decision, 0.5)

    def test_exploration_rate_decays_with_evidence(self, engine):
        """After many observations in a bucket, exploration is rare:
        the effective rate is epsilon / sqrt(1 + observations)."""
        planner = AdaptivePlanner(calibrate=False, epsilon=1.0, seed=0)
        user = next(iter(engine.locations.located_users()))
        bucket = extract_features(engine, user, 10, 0.5).bucket()
        for method in DEFAULT_CANDIDATES:
            planner.cost.observe(bucket, method, 0.5)
        for _ in range(400):
            planner.cost.observe(bucket, "spa", 0.1)
        explored = sum(
            planner.resolve(engine, user, 10, 0.5, AUTO).explored for _ in range(100)
        )
        assert explored < 30  # epsilon/sqrt(405) ~ 5% despite epsilon=1.0

    def test_planner_survives_with_graph_rebuild(self, engine):
        engine.planner = AdaptivePlanner(seed=3)
        rebuilt = engine.with_graph(engine.graph)
        assert rebuilt._planner is engine.planner

    def test_service_rebuild_engine_keeps_learned_costs(self):
        graph, locations = random_instance(120, seed=7, coverage=0.9)
        engine = GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=5)
        service = QueryService(engine, cache_size=16)
        try:
            service.query(QueryRequest(user=0, k=5, alpha=0.5, method=AUTO))
            planner = engine.planner
            observed = planner.stats.observations
            assert observed > 0
            service.update_edge(0, 1, 0.7)
            new_engine = service.rebuild_engine()
            assert new_engine.planner is planner
            service.query(QueryRequest(user=0, k=5, alpha=0.5, method=AUTO))
            assert planner.stats.observations > observed
        finally:
            service.close()


# -- the unified searcher contract ------------------------------------


class TestSearcherContract:
    def test_every_method_searcher_satisfies_protocol(self, engine):
        for method in METHODS:
            assert isinstance(engine.searcher(method, t=20), Searcher), method

    @pytest.mark.parametrize("method", ["sfa", "spa", "tsa", "tsa-qc", "ais", "bruteforce"])
    def test_execution_stats_populated(self, method):
        # A cache-disabled engine: these assertions pin the *traversal*
        # counters (pops, cells opened), which a warm social column
        # legitimately zeroes out on the dense-scan fast path.
        graph, locations = random_instance(250, seed=11, coverage=0.8)
        engine = GeoSocialEngine(
            graph, locations, num_landmarks=3, s=4, seed=5, social_cache_bytes=0
        )
        user = next(iter(engine.locations.located_users()))
        result = engine.query(user, k=10, alpha=0.5, method=method)
        stats = result.stats
        assert stats.elapsed > 0.0
        assert stats.candidates_scored > 0, method
        assert stats.pops > 0, method
        if method in ("spa", "tsa", "tsa-qc", "ais"):
            assert stats.cells_opened > 0, method
        assert result.method == method

    def test_stats_merge_includes_new_counters(self):
        from repro.core.stats import SearchStats

        a = SearchStats(cells_opened=2, candidates_scored=5)
        a.merge(SearchStats(cells_opened=1, candidates_scored=3))
        assert (a.cells_opened, a.candidates_scored) == (3, 8)

    def test_resolved_method_recorded_on_result(self, engine):
        user = next(iter(engine.locations.located_users()))
        assert engine.query(user, 5, 0.0, "tsa").method == "spa"
        assert engine.query(user, 5, 1.0, "ais").method == "sfa"
        auto = engine.query(user, 5, 0.5, AUTO)
        assert auto.method in DEFAULT_CANDIDATES


def test_unknown_method_still_rejected_everywhere(engine):
    with pytest.raises(ValueError, match="unknown method"):
        engine.query(0, 5, 0.3, "nope")
    with pytest.raises(ValueError, match="unknown method"):
        engine.resolve_method(0, 5, 0.3, "nope")


def test_out_of_range_user_raises_value_error_through_auto(engine):
    """auto resolution must surface the engine's ValueError contract
    for bad user ids, never an IndexError from feature extraction —
    through the engine, the resolver, and the cached service path."""
    bad = engine.graph.n + 5
    with pytest.raises(ValueError, match="out of range"):
        engine.resolve_method(bad, 5, 0.5, AUTO)
    with pytest.raises(ValueError, match="out of range"):
        engine.query(bad, 5, 0.5, AUTO)
    service = QueryService(engine, cache_size=8, max_workers=1)
    try:
        with pytest.raises(ValueError, match="out of range"):
            service.query(QueryRequest(user=bad, k=5, alpha=0.5, method=AUTO))
    finally:
        service.close()
