"""Crash-consistency of the columnar store, driven by fault injection.

The snapshot writer announces every intermediate step — half a column
on disk, a column written but not fsynced, the manifest half-written,
the commit rename pending, the ``CURRENT`` pointer mid-move — through
:func:`repro.store.fault_point`.  This suite first *records* the full
label stream of a successful snapshot, then replays the writer once
per label with a hook that raises :class:`InjectedFault` exactly
there, leaving whatever a real crash at that instant would leave (the
writer deliberately skips cleanup on injected faults).  After every
simulated crash the invariant under test is the same:

    the last **committed** snapshot still loads and answers queries
    bit-identically, and the next clean snapshot succeeds.

The second half pins the typed-corruption contract: flipped column
bytes, truncated or non-JSON manifests, missing columns, and tampered
``CURRENT`` pointers raise :class:`StoreCorruptionError` — never
garbage rankings.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro import GeoSocialEngine, ShardedGeoSocialEngine, gowalla_like
from repro.service import QueryService
from repro.store import (
    FORMAT_NAME,
    MANIFEST_NAME,
    InjectedFault,
    StoreCorruptionError,
    StoreError,
    fault_injection,
    load_engine,
    save_engine,
)
from repro.store.manager import CURRENT_NAME

pytest.importorskip("numpy", reason="the columnar store persists .npy columns")

METHODS = ("ais", "tsa", "sfa", "bruteforce", "auto")


def make_engine(n=160, seed=11):
    return GeoSocialEngine.from_dataset(
        gowalla_like(n=n, seed=seed), num_landmarks=3, s=3, seed=2
    )


def reference_answers(engine, users=None, k=5, alpha=0.3):
    """(user, method) -> [(id, score), ...] — the bit-exact baseline a
    recovered snapshot must reproduce."""
    if users is None:
        users = sorted(engine.locations.located_users())[:3]
    return {
        (u, m): [(nb.user, nb.score) for nb in engine.query(user=u, k=k, alpha=alpha, method=m)]
        for u in users
        for m in METHODS
    }


def assert_matches_reference(engine, reference):
    for (u, m), expected in reference.items():
        got = [
            (nb.user, nb.score)
            for nb in engine.query(user=u, k=5, alpha=0.3, method=m)
        ]
        assert got == expected, f"user {u} method {m}: {got} != {expected}"


def crash_at(label):
    """A fault hook that simulates a crash at exactly ``label``."""

    def hook(seen, target=label):
        if seen == target:
            raise InjectedFault(seen)

    return hook


def record_labels(service, root):
    """The full fault-point stream of one successful snapshot."""
    labels = []
    with fault_injection(labels.append):
        service.snapshots(root).snapshot()
    return labels


# -- fault-point coverage ----------------------------------------------


def test_fault_labels_cover_every_writer_stage(tmp_path):
    engine = make_engine(n=80)
    with QueryService(engine) as service:
        labels = record_labels(service, tmp_path / "snaps")
    # every column passes through partial / pre-fsync / synced
    columns = {l.split(":")[1] for l in labels if l.startswith("column:")}
    assert {"xs", "ys", "landmark_matrix", "graph_indptr", "graph_nbrs", "graph_wts"} <= columns
    assert any(c.endswith("grid_users") for c in columns)
    for column in columns:
        for stage in ("partial", "pre-fsync", "synced"):
            assert f"column:{column}:{stage}" in labels
    # the manifest, the directory commit, and the pointer move each
    # announce their intermediate states, in protocol order
    for label in (
        "manifest:pre-write",
        "manifest:partial",
        "manifest:pre-fsync",
        "manifest:synced",
        "commit:pre-rename",
        "commit:renamed",
        "manager:pre-commit",
        "manager:pointer-written",
        "manager:committed",
    ):
        assert label in labels
    assert labels.index("manifest:pre-write") > max(
        i for i, l in enumerate(labels) if l.startswith("column:")
    ), "the manifest must be written after every column (it is the commit point)"
    assert labels.index("commit:pre-rename") > labels.index("manifest:synced")
    assert labels.index("manager:pre-commit") > labels.index("commit:renamed")


# -- the core invariant: crash anywhere, recover the last commit --------


def test_crash_at_every_fault_point_preserves_last_committed(tmp_path):
    """Kill the writer at *every* intermediate step of a second
    snapshot; snapshot #1 must stay the loadable, committed latest, and
    a clean snapshot afterwards must succeed."""
    engine = make_engine()
    reference = reference_answers(engine)
    with QueryService(engine) as service:
        manager = service.snapshots(tmp_path / "snaps")
        first = manager.snapshot()
        labels = record_labels(service, tmp_path / "labels-probe")
        assert len(labels) > 25
        for label in labels:
            before = set((tmp_path / "snaps").iterdir())
            with fault_injection(crash_at(label)):
                with pytest.raises(InjectedFault) as excinfo:
                    manager.snapshot()
            assert excinfo.value.label == label
            latest = manager.latest()
            assert latest is not None, f"crash at {label} lost the committed pointer"
            if label.startswith(("column:", "manifest:", "commit:pre-rename")):
                # nothing new became visible as a committed snapshot
                assert latest == first, f"crash at {label} moved CURRENT"
                committed = set(manager.snapshots())
                assert committed == {p for p in before if p in committed} | {first}
            recovered = load_engine(latest)
            assert_matches_reference(recovered, reference)
        # after all that debris, a clean snapshot still commits
        final = manager.snapshot()
        assert manager.latest() == final
        assert_matches_reference(load_engine(final), reference)


def test_crash_before_first_commit_leaves_no_snapshot(tmp_path):
    engine = make_engine(n=80)
    with QueryService(engine) as service:
        manager = service.snapshots(tmp_path / "snaps")
        with fault_injection(crash_at("commit:pre-rename")):
            with pytest.raises(InjectedFault):
                manager.snapshot()
        assert manager.latest() is None
        assert manager.snapshots() == []
        with pytest.raises(StoreError):
            manager.load()
        # the crash left writer debris under a .tmp- name no reader opens
        debris = [p for p in (tmp_path / "snaps").iterdir() if ".tmp-" in p.name]
        assert debris
        # recovery: the next snapshot claims a fresh sequence number
        path = manager.snapshot()
        assert path.name != debris[0].name.split(".tmp-")[0]
        assert manager.latest() == path


def test_crash_between_rename_and_pointer_is_recoverable(tmp_path):
    """A crash after the snapshot directory renames but before CURRENT
    moves leaves an extra committed directory the pointer ignores —
    the previous snapshot stays latest, and prune reaps the orphan."""
    engine = make_engine(n=80)
    with QueryService(engine) as service:
        manager = service.snapshots(tmp_path / "snaps")
        first = manager.snapshot()
        for label in ("manager:pre-commit", "manager:pointer-written"):
            with fault_injection(crash_at(label)):
                with pytest.raises(InjectedFault):
                    manager.snapshot()
            assert manager.latest() == first, label
        orphans = [p for p in manager.snapshots() if p != first]
        assert len(orphans) == 2
        # prune keeps the newest `keep` committed dirs plus the CURRENT
        # target: the older orphan goes, the pointer never moves
        removed = manager.prune(keep=1)
        assert removed == [orphans[0]]
        assert manager.latest() == first
        assert set(manager.snapshots()) == {first, orphans[1]}


def test_crash_during_sharded_snapshot(tmp_path):
    engine = ShardedGeoSocialEngine.from_dataset(
        gowalla_like(n=150, seed=5), n_shards=4, max_workers=1, num_landmarks=3, seed=2
    )
    reference = reference_answers(engine)
    with QueryService(engine) as service:
        manager = service.snapshots(tmp_path / "snaps")
        first = manager.snapshot()
        for label in ("column:xs:partial", "manifest:partial", "commit:pre-rename"):
            with fault_injection(crash_at(label)):
                with pytest.raises(InjectedFault):
                    manager.snapshot()
            assert manager.latest() == first
            recovered = load_engine(first)
            assert isinstance(recovered, ShardedGeoSocialEngine)
            assert_matches_reference(recovered, reference)


def test_injected_fault_leaves_debris_but_real_errors_clean_up(tmp_path):
    engine = make_engine(n=80)
    # injected fault: temp dir survives, as after a real crash
    with fault_injection(crash_at("manifest:pre-fsync")):
        with pytest.raises(InjectedFault):
            save_engine(engine, tmp_path / "a")
    assert not (tmp_path / "a").exists()
    assert [p for p in tmp_path.iterdir() if p.name.startswith("a.tmp-")]
    # ordinary exception: the writer removes its temp state
    def boom(label):
        if label == "manifest:pre-fsync":
            raise OSError("disk full")

    with fault_injection(boom):
        with pytest.raises(OSError):
            save_engine(engine, tmp_path / "b")
    assert not (tmp_path / "b").exists()
    assert not [p for p in tmp_path.iterdir() if p.name.startswith("b.tmp-")]


# -- typed corruption ----------------------------------------------------


@pytest.fixture()
def saved(tmp_path):
    engine = make_engine(n=80)
    path = tmp_path / "snap"
    engine.save(path)
    return engine, path


def test_flipped_column_byte_raises_corruption(saved):
    _, path = saved
    for column in sorted(path.glob("*.npy")):
        original = column.read_bytes()
        damaged = bytearray(original)
        damaged[len(damaged) // 2] ^= 0xFF
        column.write_bytes(bytes(damaged))
        with pytest.raises(StoreCorruptionError, match="checksum mismatch"):
            load_engine(path)
        column.write_bytes(original)
    load_engine(path)  # pristine again


def test_truncated_manifest_raises_corruption(saved, tmp_path):
    _, path = saved
    manifest = path / MANIFEST_NAME
    payload = manifest.read_bytes()
    for cut in (0, 1, len(payload) // 2, len(payload) - 1):
        manifest.write_bytes(payload[:cut])
        with pytest.raises(StoreCorruptionError):
            load_engine(path)
    manifest.unlink()
    with pytest.raises(StoreCorruptionError, match="no readable manifest"):
        load_engine(path)


def test_foreign_and_future_manifests_are_rejected(saved):
    _, path = saved
    manifest = path / MANIFEST_NAME
    original = json.loads(manifest.read_text())
    foreign = dict(original, format="someone-elses-format")
    manifest.write_text(json.dumps(foreign))
    with pytest.raises(StoreCorruptionError, match=FORMAT_NAME):
        load_engine(path)
    future = dict(original, format_version=999)
    manifest.write_text(json.dumps(future))
    with pytest.raises(StoreError, match="format version"):
        load_engine(path)


def test_missing_column_file_raises_corruption(saved):
    _, path = saved
    (path / "xs.npy").unlink()
    with pytest.raises(StoreCorruptionError):
        load_engine(path)


def test_manifest_column_shape_disagreement_raises_corruption(saved):
    _, path = saved
    manifest = path / MANIFEST_NAME
    doc = json.loads(manifest.read_text())
    doc["columns"]["xs"]["shape"] = [3]
    manifest.write_text(json.dumps(doc))
    with pytest.raises(StoreCorruptionError):
        load_engine(path, verify=False)


def test_tampered_current_pointer_raises_corruption(tmp_path):
    engine = make_engine(n=80)
    with QueryService(engine) as service:
        manager = service.snapshots(tmp_path / "snaps")
        manager.snapshot()
        (tmp_path / "snaps" / CURRENT_NAME).write_text("snapshot-999999\n")
        with pytest.raises(StoreCorruptionError, match="CURRENT"):
            manager.latest()


def test_committed_snapshot_with_gutted_directory_fails_loudly(tmp_path):
    engine = make_engine(n=80)
    with QueryService(engine) as service:
        manager = service.snapshots(tmp_path / "snaps")
        path = manager.snapshot()
        shutil.rmtree(path)
        with pytest.raises(StoreCorruptionError):
            manager.latest()


# -- sketch persistence (satellite: torn/absent sketch sections) ---------


@pytest.fixture()
def saved_with_sketch(tmp_path):
    engine = make_engine(n=80)
    engine.sketch  # materialise so save() persists the sketch columns
    path = tmp_path / "snap-sketch"
    engine.save(path)
    return engine, path


def test_sketch_round_trips_through_snapshot(saved_with_sketch):
    """A persisted sketch warm-starts without re-enumeration or
    re-probing: identical metadata, identical approx answers."""
    engine, path = saved_with_sketch
    warm = load_engine(path)
    assert warm._sketch is not None, "sketch columns must restore eagerly"
    assert warm._sketch.empirical_half == engine.sketch.empirical_half
    assert warm._sketch.entry_count() == engine.sketch.entry_count()
    assert warm._sketch.max_entries == engine.sketch.max_entries
    user = sorted(engine.locations.located_users())[0]
    got = warm.query(user=user, k=5, alpha=0.3, method="approx")
    want = engine.query(user=user, k=5, alpha=0.3, method="approx")
    assert got.users == want.users
    assert got.scores == want.scores
    assert got.error_bound == want.error_bound


def test_torn_sketch_column_raises_corruption(saved_with_sketch):
    """A torn/bit-flipped sketch column is detected like any other
    column — corruption, never a silently wrong sketch."""
    _, path = saved_with_sketch
    for name in ("sketch_indptr", "sketch_nbrs", "sketch_dists"):
        column = path / f"{name}.npy"
        original = column.read_bytes()
        damaged = bytearray(original)
        damaged[len(damaged) // 2] ^= 0xFF
        column.write_bytes(bytes(damaged))
        with pytest.raises(StoreCorruptionError, match="checksum mismatch"):
            load_engine(path)
        column.write_bytes(original)
    load_engine(path)  # pristine again


def test_sketch_columns_without_metadata_are_corruption(saved_with_sketch):
    _, path = saved_with_sketch
    manifest = path / MANIFEST_NAME
    doc = json.loads(manifest.read_text())
    del doc["config"]["sketch"]
    manifest.write_text(json.dumps(doc))
    with pytest.raises(StoreCorruptionError, match="sketch"):
        load_engine(path, verify=False)


def test_inconsistent_sketch_metadata_is_corruption(saved_with_sketch):
    _, path = saved_with_sketch
    manifest = path / MANIFEST_NAME
    doc = json.loads(manifest.read_text())
    doc["config"]["sketch"]["max_entries"] = "not-a-number"
    manifest.write_text(json.dumps(doc))
    with pytest.raises(StoreCorruptionError, match="sketch columns are inconsistent"):
        load_engine(path, verify=False)


def test_snapshot_without_sketch_section_rebuilds_lazily(saved):
    """An old-format snapshot (no sketch was ever built) loads cleanly
    with no sketch — *not* a corruption error — and the first approx
    query rebuilds one whose answers match the saved engine's."""
    engine, path = saved
    assert engine._sketch is None, "fixture must predate the sketch"
    loaded = load_engine(path)
    assert loaded._sketch is None
    user = sorted(engine.locations.located_users())[0]
    got = loaded.query(user=user, k=5, alpha=0.3, method="approx")
    want = engine.query(user=user, k=5, alpha=0.3, method="approx")
    assert loaded._sketch is not None  # rebuilt on demand
    assert got.users == want.users and got.scores == want.scores
    assert got.error_bound == want.error_bound
