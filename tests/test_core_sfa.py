"""Behavioural tests for the Social First Approach."""

import math

import pytest

from repro.core.ranking import Normalization
from repro.core.sfa import SocialFirstSearch
from repro.graph.socialgraph import SocialGraph
from repro.spatial.point import LocationTable
from tests.conftest import random_instance

INF = math.inf


@pytest.fixture(scope="module")
def searcher():
    graph, locations = random_instance(200, seed=301, coverage=0.8)
    norm = Normalization.estimate(graph, locations)
    return SocialFirstSearch(graph, locations, norm), graph


def test_alpha_zero_rejected(searcher):
    sfa, _ = searcher
    with pytest.raises(ValueError, match="alpha"):
        sfa.search(0, 5, 0.0)


def test_invalid_user(searcher):
    sfa, graph = searcher
    with pytest.raises(ValueError):
        sfa.search(graph.n + 5, 5, 0.5)


def test_large_alpha_terminates_early(searcher):
    """The more social the preference, the tighter SFA's bound: at
    alpha=0.9 it must pop (weakly) fewer vertices than at alpha=0.1."""
    sfa, _ = searcher
    low = sfa.search(0, 10, 0.1)
    high = sfa.search(0, 10, 0.9)
    assert high.stats.pops_social <= low.stats.pops_social


def test_stats_populated(searcher):
    sfa, _ = searcher
    result = sfa.search(0, 10, 0.5)
    assert result.stats.pops_social > 0
    assert result.stats.pops_spatial == 0
    assert result.stats.elapsed >= 0


def test_pure_social_includes_unlocated_users():
    graph = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
    locations = LocationTable.empty(3)
    locations.set(0, 0.0, 0.0)
    sfa = SocialFirstSearch(graph, locations, Normalization(p_max=2.0, d_max=1.0))
    result = sfa.search(0, 2, 1.0)
    assert result.users == [1, 2]  # both unlocated, still ranked socially


def test_mixed_alpha_excludes_unlocated_users():
    graph = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
    locations = LocationTable.empty(3)
    locations.set(0, 0.0, 0.0)
    locations.set(1, 1.0, 1.0)
    sfa = SocialFirstSearch(graph, locations, Normalization(p_max=2.0, d_max=2.0))
    result = sfa.search(0, 2, 0.5)
    assert result.users == [1]  # user 2 has f = inf


def test_unreachable_component_excluded():
    graph = SocialGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    locations = LocationTable.empty(4)
    for u in range(4):
        locations.set(u, u * 0.1, 0.0)
    sfa = SocialFirstSearch(graph, locations, Normalization(p_max=1.0, d_max=1.0))
    result = sfa.search(0, 3, 0.5)
    assert result.users == [1]


def test_result_metadata(searcher):
    sfa, _ = searcher
    result = sfa.search(5, 7, 0.4)
    assert result.query_user == 5
    assert result.k == 7
    assert result.alpha == 0.4
