"""Tests for the ranking function and normalisation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import Normalization, RankingFunction
from tests.conftest import random_graph, random_locations

INF = math.inf
NORM = Normalization(p_max=10.0, d_max=2.0)


class TestRankingFunction:
    def test_linear_combination(self):
        rank = RankingFunction(0.3, NORM)
        # f = 0.3 * (5/10) + 0.7 * (1/2)
        assert math.isclose(rank.score(5.0, 1.0), 0.3 * 0.5 + 0.7 * 0.5)

    def test_alpha_zero_ignores_social(self):
        rank = RankingFunction(0.0, NORM)
        assert rank.score(INF, 1.0) == 0.5
        assert not rank.needs_social
        assert rank.needs_spatial

    def test_alpha_one_ignores_spatial(self):
        rank = RankingFunction(1.0, NORM)
        assert rank.score(5.0, INF) == 0.5
        assert rank.needs_social
        assert not rank.needs_spatial

    def test_infinite_distance_gives_infinite_score(self):
        rank = RankingFunction(0.5, NORM)
        assert rank.score(INF, 1.0) == INF
        assert rank.score(5.0, INF) == INF

    def test_no_nan_at_endpoints(self):
        for alpha in (0.0, 1.0):
            rank = RankingFunction(alpha, NORM)
            value = rank.score(INF, INF)
            assert value == value  # INF, but never NaN

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            RankingFunction(-0.1, NORM)
        with pytest.raises(ValueError):
            RankingFunction(1.5, NORM)

    def test_parts_sum_to_score(self):
        rank = RankingFunction(0.7, NORM)
        p, d = 3.0, 0.5
        assert math.isclose(rank.social_part(p) + rank.spatial_part(d), rank.score(p, d))

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_property_monotone(self, alpha, p1, p2, d1, d2):
        """f must be increasingly monotone in both distances (the TA
        requirement TSA's correctness rests on)."""
        rank = RankingFunction(alpha, NORM)
        if p1 <= p2 and d1 <= d2:
            assert rank.score(p1, d1) <= rank.score(p2, d2) + 1e-12


class TestNormalization:
    def test_estimate_from_data(self):
        g = random_graph(50, 4.0, seed=201)
        locations = random_locations(50, seed=202)
        norm = Normalization.estimate(g, locations)
        assert norm.p_max > 0
        assert norm.d_max > 0
        assert norm.d_max == locations.bbox().diagonal

    def test_estimate_no_locations(self):
        g = random_graph(20, 3.0, seed=203)
        locations = random_locations(20, seed=204, coverage=0.0)
        norm = Normalization.estimate(g, locations)
        assert norm.d_max == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Normalization(p_max=-1.0, d_max=1.0)

    def test_degenerate_normalisers_no_crash(self):
        rank = RankingFunction(0.5, Normalization(p_max=0.0, d_max=0.0))
        assert rank.score(0.0, 0.0) == 0.0
