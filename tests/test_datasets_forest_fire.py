"""Tests for Forest-Fire sampling."""

import pytest

from repro.datasets.forest_fire import forest_fire_sample
from repro.graph.traversal import hop_counts
from tests.conftest import random_graph


def test_sample_size_exact():
    g = random_graph(300, 6.0, seed=21)
    sub, mapping = forest_fire_sample(g, 80, seed=1)
    assert sub.n == 80
    assert len(mapping) == 80


def test_mapping_is_bijection_into_subgraph():
    g = random_graph(200, 5.0, seed=22)
    sub, mapping = forest_fire_sample(g, 50, seed=2)
    assert sorted(mapping.values()) == list(range(50))


def test_edges_preserved_between_sampled_vertices():
    g = random_graph(150, 5.0, seed=23)
    sub, mapping = forest_fire_sample(g, 60, seed=3)
    inverse = {new: old for old, new in mapping.items()}
    for u, v, w in sub.edges():
        assert g.edge_weight(inverse[u], inverse[v]) == w


def test_sample_connectedness_dominates():
    """Forest fire burns contiguously: the sample's giant component
    should cover the bulk of the sampled vertices."""
    g = random_graph(400, 6.0, seed=24)
    sub, _ = forest_fire_sample(g, 120, p_forward=0.75, seed=4)
    best = max(len(hop_counts(sub, v)) for v in range(0, 120, 17))
    assert best >= 0.5 * sub.n


def test_full_sample_is_whole_graph():
    g = random_graph(50, 4.0, seed=25)
    sub, _ = forest_fire_sample(g, 50, seed=5)
    assert sub.n == 50
    assert sub.num_edges == g.num_edges


def test_deterministic():
    g = random_graph(100, 5.0, seed=26)
    a = forest_fire_sample(g, 30, seed=6)
    b = forest_fire_sample(g, 30, seed=6)
    assert a[1] == b[1]


def test_validation():
    g = random_graph(20, 3.0, seed=27)
    with pytest.raises(ValueError):
        forest_fire_sample(g, 0)
    with pytest.raises(ValueError):
        forest_fire_sample(g, 21)
    with pytest.raises(ValueError):
        forest_fire_sample(g, 5, p_forward=1.0)
    with pytest.raises(ValueError):
        forest_fire_sample(g, 5, p_forward=-0.1)
