"""Tests for Contraction Hierarchies."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ch import ContractionHierarchy
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import dijkstra_distances
from repro.utils.heaps import MinHeap
from tests.conftest import random_graph

INF = math.inf


def check_all_pairs(g, ch, samples=None):
    sources = samples if samples is not None else range(g.n)
    for s in sources:
        truth = dijkstra_distances(g, s)
        for t in range(g.n):
            assert math.isclose(
                ch.distance(s, t), truth.get(t, INF), abs_tol=1e-9
            ), f"pair ({s}, {t})"


def test_path_graph():
    g = SocialGraph.from_edges(5, [(i, i + 1, float(i + 1)) for i in range(4)])
    ch = ContractionHierarchy.build(g)
    check_all_pairs(g, ch)


def test_ranks_are_a_permutation():
    g = random_graph(40, 4.0, seed=61)
    ch = ContractionHierarchy.build(g)
    assert sorted(ch.rank) == list(range(40))


def test_random_graph_all_pairs():
    g = random_graph(45, 4.0, seed=62)
    ch = ContractionHierarchy.build(g)
    check_all_pairs(g, ch)


def test_disconnected_components():
    g = SocialGraph.from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])
    ch = ContractionHierarchy.build(g)
    assert ch.distance(0, 5) == INF
    assert ch.distance(0, 2) == 2.0
    assert ch.distance(3, 5) == 2.0


def test_same_vertex():
    g = random_graph(10, 3.0, seed=63)
    ch = ContractionHierarchy.build(g)
    assert ch.distance(4, 4) == 0.0


def test_tiny_witness_limit_still_correct():
    """Starved witness searches may add extra shortcuts but never lose
    correctness."""
    g = random_graph(35, 4.0, seed=64)
    strict = ContractionHierarchy.build(g, witness_settle_limit=1)
    generous = ContractionHierarchy.build(g, witness_settle_limit=500)
    assert strict.num_shortcuts >= generous.num_shortcuts
    check_all_pairs(g, strict, samples=range(0, 35, 5))


def test_small_core_limit_still_correct():
    """An aggressive core threshold leaves most of the graph
    uncontracted; queries degrade toward Dijkstra but stay exact."""
    g = random_graph(60, 6.0, seed=65)
    ch = ContractionHierarchy.build(g, core_degree_limit=2)
    assert ch.core_size > 0
    check_all_pairs(g, ch, samples=range(0, 60, 10))


def test_zero_core_when_unconstrained():
    g = random_graph(30, 3.0, seed=68)
    ch = ContractionHierarchy.build(g, core_degree_limit=30)
    assert ch.core_size == 0
    assert sorted(ch.rank) == list(range(30))


def test_upward_distances_distance_from_matches_bidirectional():
    """The cached-forward query path must equal the plain query."""
    g = random_graph(45, 4.0, seed=69)
    ch = ContractionHierarchy.build(g)
    for s in range(0, 45, 9):
        forward = ch.upward_distances(s)
        for t in range(45):
            assert math.isclose(
                ch.distance_from(forward, s, t), ch.distance(s, t), abs_tol=1e-9
            ), f"pair ({s}, {t})"


def test_ch_oracle_caches_forward_state():
    from repro.core.graphdist import CHOracle

    g = random_graph(40, 4.0, seed=70)
    ch = ContractionHierarchy.build(g)
    oracle = CHOracle(ch)
    truth = dijkstra_distances(g, 3)
    for t in range(40):
        assert math.isclose(oracle.distance(3, t), truth.get(t, INF), abs_tol=1e-9)
    # Switching source invalidates the cache transparently.
    truth5 = dijkstra_distances(g, 5)
    for t in range(0, 40, 7):
        assert math.isclose(oracle.distance(5, t), truth5.get(t, INF), abs_tol=1e-9)


def test_shared_heap_counts_pops():
    g = random_graph(30, 4.0, seed=66)
    ch = ContractionHierarchy.build(g)
    heap = MinHeap()
    ch.distance(0, 15, heap)
    assert heap.pops > 0


def test_directed_rejected():
    g = SocialGraph.from_edges(3, [(0, 1, 1.0)], directed=True)
    with pytest.raises(NotImplementedError):
        ContractionHierarchy.build(g)


def test_dense_weighted_graph():
    rng = random.Random(67)
    n = 15
    edges = [
        (u, v, rng.uniform(0.1, 2.0)) for u in range(n) for v in range(u + 1, n)
    ]
    g = SocialGraph.from_edges(n, edges)
    ch = ContractionHierarchy.build(g)
    check_all_pairs(g, ch)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_ch_equals_dijkstra(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 25)
    g = random_graph(n, 3.0, seed=seed % 333)
    ch = ContractionHierarchy.build(g)
    s, t = rng.randrange(n), rng.randrange(n)
    expected = dijkstra_distances(g, s).get(t, INF)
    assert math.isclose(ch.distance(s, t), expected, abs_tol=1e-9)
