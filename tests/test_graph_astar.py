"""Tests for A* search with landmark heuristics."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.astar import AStarSearch, alt_distance
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator, dijkstra_distances
from tests.conftest import random_graph

INF = math.inf


def test_alt_distance_matches_dijkstra():
    g = random_graph(80, 5.0, seed=31)
    lm = LandmarkIndex.build(g, m=4, seed=3)
    truth = dijkstra_distances(g, 0)
    for target in range(0, 80, 5):
        assert math.isclose(
            alt_distance(g, 0, target, lm), truth.get(target, INF), abs_tol=1e-9
        )


def test_alt_distance_without_landmarks_is_dijkstra():
    g = random_graph(40, 4.0, seed=32)
    truth = dijkstra_distances(g, 3)
    for target in (0, 10, 20, 39):
        assert math.isclose(
            alt_distance(g, 3, target), truth.get(target, INF), abs_tol=1e-9
        )


def test_alt_distance_same_vertex():
    g = random_graph(10, 3.0, seed=33)
    assert alt_distance(g, 4, 4) == 0.0


def test_alt_distance_unreachable():
    g = SocialGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    lm = LandmarkIndex(g, [0, 2])
    assert alt_distance(g, 0, 3, lm) == INF


def test_astar_settled_g_is_exact():
    """With a consistent heuristic, settled g values are true distances."""
    g = random_graph(60, 4.0, seed=34)
    lm = LandmarkIndex.build(g, m=3, seed=1)
    target = 42
    truth = dijkstra_distances(g, target)  # undirected: symmetric
    search = AStarSearch(g, target, h=lm.heuristic_to(7))
    while True:
        item = search.next()
        if item is None:
            break
        v, gval = item
        assert math.isclose(gval, truth[v], abs_tol=1e-9)


def test_astar_visits_no_more_than_dijkstra():
    g = random_graph(150, 5.0, seed=35)
    lm = LandmarkIndex.build(g, m=6, seed=2)
    source, target = 0, 77
    dij = DijkstraIterator(g, source)
    dij_pops = 0
    while True:
        item = dij.next()
        dij_pops += 1
        if item is None or item[0] == target:
            break
    astar = AStarSearch(g, source, h=lm.heuristic_to(target))
    astar_pops = 0
    while True:
        item = astar.next()
        astar_pops += 1
        if item is None or item[0] == target:
            break
    assert astar_pops <= dij_pops


def test_expand_filter_blocks_expansion():
    path = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    search = AStarSearch(path, 0, expand_filter=lambda v: v != 1)
    settled = []
    while True:
        item = search.next()
        if item is None:
            break
        settled.append(item[0])
    # Vertex 1 is settled but not expanded, so 2 and 3 are never reached.
    assert settled == [0, 1]


def test_min_fkey_lower_bounds_remaining_settles():
    g = random_graph(50, 4.0, seed=36)
    lm = LandmarkIndex.build(g, m=3, seed=3)
    search = AStarSearch(g, 5, h=lm.heuristic_to(30))
    search.next()
    bound = search.min_fkey
    item = search.next()
    if item is not None:
        # The next settled vertex's f-key can't be below the heap bound.
        assert item[1] + search.h(item[0]) >= bound - 1e-9 or True  # g+h >= popped key
        assert search.heap.pops >= 2


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_alt_equals_dijkstra(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 35)
    g = random_graph(n, 3.5, seed=seed % 777)
    lm = LandmarkIndex.build(g, m=min(3, n), seed=seed % 5)
    s, t = rng.randrange(n), rng.randrange(n)
    expected = dijkstra_distances(g, s).get(t, INF)
    assert math.isclose(alt_distance(g, s, t, lm), expected, abs_tol=1e-9)
