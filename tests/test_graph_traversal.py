"""Tests for Dijkstra iteration and path utilities, cross-checked
against networkx."""

import math
import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import (
    DijkstraIterator,
    dijkstra_distances,
    hop_counts,
    shortest_path,
)
from tests.conftest import random_graph

INF = math.inf


def to_networkx(graph: SocialGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g


PATH = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])


class TestDijkstraIterator:
    def test_settles_in_distance_order(self):
        g = random_graph(60, 4.0, seed=1)
        it = DijkstraIterator(g, 0)
        prev = -1.0
        while True:
            item = it.next()
            if item is None:
                break
            assert item[1] >= prev
            prev = item[1]

    def test_source_settles_first_at_zero(self):
        it = DijkstraIterator(PATH, 2)
        assert it.next() == (2, 0.0)

    def test_matches_networkx(self):
        g = random_graph(80, 5.0, seed=2)
        expected = nx.single_source_dijkstra_path_length(to_networkx(g), 7)
        got = dijkstra_distances(g, 7)
        assert set(got) == set(expected)
        for v, d in expected.items():
            assert math.isclose(got[v], d, abs_tol=1e-9)

    def test_run_until_returns_exact_distance(self):
        g = random_graph(50, 4.0, seed=3)
        it = DijkstraIterator(g, 0)
        expected = nx.single_source_dijkstra_path_length(to_networkx(g), 0)
        for target in sorted(expected):
            assert math.isclose(it.run_until(target), expected[target], abs_tol=1e-9)

    def test_run_until_unreachable_is_inf(self):
        g = SocialGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert DijkstraIterator(g, 0).run_until(3) == INF

    def test_resumable_interleaving(self):
        g = random_graph(40, 4.0, seed=4)
        it = DijkstraIterator(g, 0)
        a = it.next()
        b = it.next()
        full = dijkstra_distances(g, 0)
        assert a[1] <= b[1]
        it.run_to_completion()
        assert it.settled == full

    def test_last_distance_tracks_frontier(self):
        it = DijkstraIterator(PATH, 0)
        assert it.last_distance == 0.0
        it.next()  # source
        it.next()
        assert it.last_distance == 1.0

    def test_path_to(self):
        d, path = shortest_path(PATH, 0, 3)
        assert d == 3.0
        assert path == [0, 1, 2, 3]

    def test_path_to_unsettled_raises(self):
        it = DijkstraIterator(PATH, 0)
        with pytest.raises(KeyError):
            it.path_to(3)

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            DijkstraIterator(PATH, 9)

    def test_run_past(self):
        it = DijkstraIterator(PATH, 0)
        it.run_past(1.5)
        assert 2 in it.settled
        assert it.last_distance >= 1.5 or it.exhausted


class TestPauseResumeContracts:
    """The park/resume contracts the social column cache
    (:mod:`repro.social`) checks iterators out and back in under: a
    parked expansion must behave exactly like one that never paused."""

    def test_run_until_settled_target_is_idempotent_after_pause(self):
        # Re-querying an already-settled target after a pause reads the
        # settled map — no heap work, no state change.
        g = random_graph(40, 5.0, seed=9)
        it = DijkstraIterator(g, 0)
        for _ in range(10):
            if it.next() is None:
                break
        snapshot = dict(it.settled)
        pops = it.heap.pops
        for v, d in snapshot.items():
            assert it.run_until(v) == d
        assert it.heap.pops == pops
        assert it.settled == snapshot

    def test_resumed_completion_matches_fresh_including_settle_order(self):
        # A paused-and-resumed expansion lands on the same distances in
        # the same settle order as an uninterrupted one (settle order =
        # dict insertion order is what ReplayedDijkstra replays).
        g = random_graph(50, 4.0, seed=17)
        fresh = DijkstraIterator(g, 3)
        fresh.run_to_completion()
        paused = DijkstraIterator(g, 3)
        for _ in range(7):
            paused.next()
        paused.run_to_completion()
        assert paused.settled == fresh.settled
        assert list(paused.settled) == list(fresh.settled)

    def test_exhaustion_is_stable(self):
        # Once exhausted, an iterator stays exhausted: next() keeps
        # returning None and run_until keeps answering from settled /
        # inf — the promotion-to-full-column precondition.
        g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0)])
        it = DijkstraIterator(g, 0)
        it.run_to_completion()
        assert it.exhausted
        assert it.next() is None
        assert it.run_until(3) == INF
        assert it.run_until(2) == 2.0
        assert it.exhausted and it.next() is None

    def test_target_requery_across_interleaved_advancement(self):
        # Settle a target, pause, advance past it for unrelated work,
        # re-query: the distance is final and unchanged.
        g = random_graph(60, 5.0, seed=23)
        it = DijkstraIterator(g, 1)
        targets = [v for v in (5, 9, 14) if v != 1]
        first = {v: it.run_until(v) for v in targets}
        it.run_past(max(d for d in first.values() if d != INF) + 0.5)
        for v in targets:
            assert it.run_until(v) == first[v]

    def test_last_distance_survives_pause(self):
        g = random_graph(40, 4.0, seed=31)
        it = DijkstraIterator(g, 0)
        it.next()
        it.next()
        frontier = it.last_distance
        # a pause (no calls) obviously keeps it; a settled re-query must too
        it.run_until(next(iter(it.settled)))
        assert it.last_distance == frontier


class TestHelpers:
    def test_dijkstra_cutoff(self):
        got = dijkstra_distances(PATH, 0, cutoff=1.5)
        assert set(got) == {0, 1}

    def test_shortest_path_unreachable(self):
        g = SocialGraph.from_edges(3, [(0, 1, 1.0)])
        assert shortest_path(g, 0, 2) == (INF, [])

    def test_hop_counts_bfs(self):
        hops = hop_counts(PATH, 0)
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_hop_counts_ignore_weights(self):
        g = SocialGraph.from_edges(3, [(0, 1, 100.0), (0, 2, 0.1), (1, 2, 0.1)])
        assert hop_counts(g, 0)[1] == 1  # one hop despite heavy weight


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_property_dijkstra_vs_networkx(seed):
    rng = random.Random(seed)
    n = rng.randint(2, 40)
    g = random_graph(n, min(4.0, n / 2), seed=seed % 10_000)
    source = rng.randrange(n)
    expected = nx.single_source_dijkstra_path_length(to_networkx(g), source)
    got = dijkstra_distances(g, source)
    assert set(got) == set(expected)
    for v in expected:
        assert math.isclose(got[v], expected[v], abs_tol=1e-9)
