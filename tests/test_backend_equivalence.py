"""Backend-equivalence harness: ``NumpyKernels`` and ``PythonKernels``
must produce identical rankings.

The data-plane refactor's core promise: backend choice is purely a
performance decision, never a semantics one.  Both backends share one
Euclidean primitive (``sqrt(dx² + dy²)``), one blend gating rule, and
one ALT bound definition built from IEEE-exact elementwise operations,
so their scores should agree bit-for-bit — this suite pins top-k ids
exactly (tie-breaks included) and scores within 1e-9 (the acceptance
tolerance; on CI hardware they are in fact equal) across methods, α
values (endpoints included), coverage levels, and shard counts {1, 4}.

Runs under the same fixed, derandomized profile as the cross-shard
equivalence suite (PR 2), applied per test, so CI runs are
deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend import PythonKernels, resolve_backend
from repro.core.engine import GeoSocialEngine
from repro.shard import ShardedGeoSocialEngine
from tests.conftest import random_instance

pytest.importorskip("numpy", reason="backend equivalence needs the numpy backend")

settings.register_profile(
    "backend-ci",
    max_examples=20,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
BACKEND_CI = settings.get_profile("backend-ci")

#: methods exercising every batched code path: full-scan scoring
#: (bruteforce), NN-stream batching (spa/tsa), AIS leaf batching
#: (ais/ais-minus), plus the scalar-stream control (sfa)
METHODS = ("bruteforce", "spa", "tsa", "tsa-qc", "ais", "ais-minus", "sfa")
ALPHAS = (0.0, 0.25, 0.3123, 0.5, 1.0)
SHARD_COUNTS = (1, 4)


def build_backend_pair(n, seed, coverage, avg_degree=6.0):
    """(python-backend, numpy-backend) single engines over one dataset,
    sharing landmarks and normalization so only the kernels differ."""
    graph, locations = random_instance(n, seed=seed, coverage=coverage, avg_degree=avg_degree)
    if locations.n_located == 0:
        locations.set(0, 0.5, 0.5)
    scalar = GeoSocialEngine(
        graph, locations.copy(), num_landmarks=3, s=3, seed=3, backend="python"
    )
    vector = GeoSocialEngine(
        graph,
        locations.copy(),
        num_landmarks=3,
        s=3,
        seed=3,
        backend="numpy",
        landmarks=scalar.landmarks,
        normalization=scalar.normalization,
    )
    return scalar, vector


def assert_backend_rankings_equal(a, b, context):
    ids_a = [nb.user for nb in a]
    ids_b = [nb.user for nb in b]
    assert ids_a == ids_b, f"{context}: ranking differs: {ids_a} vs {ids_b}"
    for nb_a, nb_b in zip(a, b):
        assert abs(nb_a.score - nb_b.score) <= 1e-9, (
            f"{context}: score for user {nb_a.user} differs: "
            f"{nb_a.score!r} vs {nb_b.score!r}"
        )


@BACKEND_CI
@given(
    n=st.integers(min_value=24, max_value=90),
    seed=st.integers(min_value=0, max_value=2**16),
    coverage=st.sampled_from((0.5, 0.8, 1.0)),
    alpha=st.sampled_from(ALPHAS),
    k=st.sampled_from((1, 5, 12)),
)
def test_single_engine_backends_rank_identically(n, seed, coverage, alpha, k):
    scalar, vector = build_backend_pair(n, seed, coverage)
    queries = [u for u in scalar.locations.located_users()][:4] or [0]
    for method in METHODS:
        for user in queries:
            try:
                a = scalar.query(user, k, alpha, method)
            except ValueError as err:
                with pytest.raises(ValueError):
                    vector.query(user, k, alpha, method)
                assert "location" in str(err) or "alpha" in str(err)
                continue
            b = vector.query(user, k, alpha, method)
            assert_backend_rankings_equal(a, b, f"{method}@alpha={alpha}")


@BACKEND_CI
@given(
    n=st.integers(min_value=30, max_value=80),
    seed=st.integers(min_value=0, max_value=2**16),
    n_shards=st.sampled_from(SHARD_COUNTS),
    alpha=st.sampled_from((0.0, 0.3, 1.0)),
)
def test_sharded_backends_rank_identically(n, seed, n_shards, alpha):
    graph, locations = random_instance(n, seed=seed, coverage=0.8)
    if locations.n_located == 0:
        locations.set(0, 0.5, 0.5)
    scalar = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=n_shards,
        num_landmarks=3, s=3, seed=3, max_workers=1, backend="python",
    )
    vector = ShardedGeoSocialEngine(
        graph, locations.copy(), n_shards=n_shards,
        num_landmarks=3, s=3, seed=3, max_workers=1, backend="numpy",
        landmarks=scalar.landmarks, normalization=scalar.normalization,
    )
    assert scalar.backend == "python" and vector.backend == "numpy"
    queries = [u for u in scalar.locations.located_users()][:4] or [0]
    for method in ("spa", "tsa", "ais", "bruteforce"):
        for user in queries:
            a = scalar.query(user, 8, alpha, method)
            b = vector.query(user, 8, alpha, method)
            assert_backend_rankings_equal(
                a, b, f"sharded[{n_shards}] {method}@alpha={alpha}"
            )


def test_backend_scores_bitwise_equal_on_ci_hardware():
    """Stronger than the 1e-9 contract: on one platform the two
    backends agree *bit-for-bit* (same sqrt/multiply/add sequence) —
    the property that makes tie-breaks portable between them."""
    scalar, vector = build_backend_pair(n=70, seed=123, coverage=0.7)
    queries = [u for u in scalar.locations.located_users()][:5]
    for method in METHODS:
        for user in queries:
            try:
                a = scalar.query(user, 10, 0.3, method)
            except ValueError:
                continue
            b = vector.query(user, 10, 0.3, method)
            assert [(nb.user, float(nb.score)) for nb in a] == [
                (nb.user, float(nb.score)) for nb in b
            ], method


def test_default_searcher_kernels_are_scalar():
    """Direct searcher construction (no engine) stays on the extracted
    scalar path — backend choice is an engine-level decision."""
    from repro.core.bruteforce import BruteForceSearch
    from repro.core.ranking import Normalization
    from repro.graph.socialgraph import SocialGraph
    from repro.spatial.point import LocationTable

    g = SocialGraph.from_edges(2, [(0, 1, 1.0)])
    loc = LocationTable.from_columns([0.0, 1.0], [0.0, 0.0])
    bf = BruteForceSearch(g, loc, Normalization(p_max=1.0, d_max=1.0))
    assert isinstance(bf.kernels, PythonKernels)


def test_engine_backend_survives_with_graph_and_rebuild():
    """The backend is resolved once and propagated through rebuilds —
    the with_graph / rebuild_engine contract of the issue."""
    from repro.service import QueryService

    graph, locations = random_instance(40, seed=5)
    engine = GeoSocialEngine(graph, locations, num_landmarks=2, s=3, backend="python")
    assert engine.backend == "python"
    rebuilt = engine.with_graph(graph)
    assert rebuilt.backend == "python"
    assert isinstance(rebuilt.kernels, PythonKernels)

    with QueryService(engine, cache_size=8) as service:
        service.update_edge(0, 1, 0.5)
        swapped = service.rebuild_engine()
        assert swapped.backend == "python"


def test_custom_kernels_instance_survives_rebuild():
    """A user-supplied Kernels object (not just a name) is propagated
    as-is through with_graph — not re-resolved by name."""

    class TracingKernels(PythonKernels):
        name = "traced"

    graph, locations = random_instance(30, seed=8)
    kernels = TracingKernels()
    engine = GeoSocialEngine(graph, locations, num_landmarks=2, s=3, backend=kernels)
    assert engine.backend == "traced"
    rebuilt = engine.with_graph(graph)
    assert rebuilt.kernels is kernels

    sharded = ShardedGeoSocialEngine(
        graph, locations, n_shards=2, num_landmarks=2, s=3, max_workers=1, backend=kernels
    )
    assert sharded.kernels is kernels
    assert all(e.kernels is kernels for e in sharded._engines.values())
    assert sharded.with_graph(graph).kernels is kernels


def test_resolve_backend_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert resolve_backend("auto").name == "python"
    # explicit request beats the environment
    assert resolve_backend("numpy").name == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "bogus")
    with pytest.raises(ValueError):
        resolve_backend("auto")
    monkeypatch.delenv("REPRO_BACKEND")
    assert resolve_backend("auto").name == "numpy"
