"""The example scripts must run cleanly end-to-end.

Examples are documentation that executes; a broken example is a broken
promise to the first user.  The heavyweight scripts are exercised at
reduced scale via their module-level structure where possible, and the
light ones as real subprocesses.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


def test_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "companion_recommendation.py",
        "location_updates.py",
        "algorithm_comparison.py",
        "service_quickstart.py",
        "sharded_quickstart.py",
        "stream_quickstart.py",
        "store_quickstart.py",
        "server_quickstart.py",
    } <= present


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "top-10 companions" in out
    assert "alpha=0.9 (social) top-5" in out


def test_companion_recommendation_runs():
    out = run_example("companion_recommendation.py")
    assert "Pure spatial k-NN" in out
    assert "SSRQ (alpha = 0.5)" in out
    # The story of the paper's Figure 1: SSRQ surfaces the social circle.
    line = next(l for l in out.splitlines() if "social-circle members" in l)
    assert "SSRQ 0/5" not in line


def test_location_updates_runs():
    out = run_example("location_updates.py")
    assert "matches brute force: True" in out
    assert "disabled location sharing" in out


def test_service_quickstart_runs():
    out = run_example("service_quickstart.py")
    assert "cache hit rate" in out
    assert "batched rankings identical to sequential engine.query: True" in out
    assert "verified against brute force: True" in out
    assert "epoch-based full invalidation" in out


def test_stream_quickstart_runs():
    out = run_example("stream_quickstart.py")
    assert "standing queries" in out
    assert "maintained results identical to fresh recompute: True" in out
    assert "repaired" in out and "NO-OP" in out


def test_sharded_quickstart_runs():
    out = run_example("sharded_quickstart.py")
    assert "identical to the single engine: True" in out
    assert "cached before move: True, after move: False" in out
    assert "cumulative scatter stats" in out


def test_server_quickstart_runs():
    out = run_example("server_quickstart.py")
    assert "HTTP answer identical to in-process engine.query: True" in out
    assert "400 invalid_argument" in out
    assert "['snapshot', 'delta']" in out
    assert "drained cleanly: True" in out


def test_store_quickstart_runs():
    out = run_example("store_quickstart.py")
    assert "bit-identical answers after restart: True" in out
    assert "restored engine serves the folded edge: True" in out
    assert "damaged snapshot refused: checksum mismatch" in out
