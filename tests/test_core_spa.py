"""Behavioural tests for the Spatial First Approach."""

import math

import pytest

from repro.core.ranking import Normalization
from repro.core.spa import SpatialFirstSearch
from repro.graph.socialgraph import SocialGraph
from repro.spatial.grid import UniformGrid
from repro.spatial.point import LocationTable
from tests.conftest import random_instance

INF = math.inf


@pytest.fixture(scope="module")
def searcher():
    graph, locations = random_instance(200, seed=311, coverage=0.8)
    norm = Normalization.estimate(graph, locations)
    grid = UniformGrid.build(locations, 12)
    return SpatialFirstSearch(graph, locations, grid, norm), locations


def test_alpha_one_rejected(searcher):
    spa, locations = searcher
    user = next(locations.located_users())
    with pytest.raises(ValueError, match="alpha"):
        spa.search(user, 5, 1.0)


def test_unlocated_query_user_rejected(searcher):
    spa, locations = searcher
    user = next(u for u in range(200) if not locations.has_location(u))
    with pytest.raises(ValueError, match="location"):
        spa.search(user, 5, 0.5)


def test_small_alpha_terminates_early(searcher):
    """The more spatial the preference, the tighter SPA's bound."""
    spa, locations = searcher
    user = next(locations.located_users())
    low = spa.search(user, 10, 0.1)
    high = spa.search(user, 10, 0.7)
    assert low.stats.pops_spatial <= high.stats.pops_spatial


def test_alpha_zero_pure_spatial(searcher):
    """At alpha = 0 SPA is a plain k-NN query and needs no social work."""
    spa, locations = searcher
    user = next(locations.located_users())
    result = spa.search(user, 10, 0.0)
    assert result.stats.pops_social == 0
    spatial = [nb.spatial for nb in result]
    assert spatial == sorted(spatial)


def test_stats_populated(searcher):
    spa, locations = searcher
    user = next(locations.located_users())
    result = spa.search(user, 10, 0.3)
    assert result.stats.pops_spatial > 0
    assert result.stats.evaluations > 0


def test_social_evaluations_shared_incrementally(searcher):
    """Vanilla SPA's social module is one shared Dijkstra: its total
    social pops per query cannot exceed one full expansion (plus the
    stale-entry overhead), regardless of how many candidates it scores."""
    spa, locations = searcher
    graph_n = 200
    user = next(locations.located_users())
    result = spa.search(user, 30, 0.5)
    # Each vertex settles once; stale pops are bounded by edge count.
    assert result.stats.pops_social <= graph_n * 10


def test_isolated_spatial_cluster():
    """Users spatially close but socially unreachable must still be
    scored correctly (f = inf at mixed alpha -> excluded)."""
    graph = SocialGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
    locations = LocationTable.empty(4)
    locations.set(0, 0.0, 0.0)
    locations.set(1, 0.9, 0.9)
    locations.set(2, 0.01, 0.01)  # nearest spatially, unreachable socially
    locations.set(3, 0.02, 0.02)
    grid = UniformGrid.build(locations, 4)
    spa = SpatialFirstSearch(graph, locations, grid, Normalization(1.0, 2.0))
    result = spa.search(0, 3, 0.5)
    assert result.users == [1]
