"""Direct property tests of SSRQ Definition 1 and the paper's bounds.

Beyond agreeing with brute force, each result must satisfy the
definition itself: every user outside the result R scores no better
than ``f_k`` (the worst score in R), and R contains exactly the k
finite-score minimisers.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GeoSocialEngine
from repro.core.ranking import RankingFunction
from tests.conftest import random_instance

INF = math.inf


def assert_definition_holds(engine: GeoSocialEngine, result) -> None:
    """Definition 1: for every u' not in R (u' != u_q):
    f(u_q, u') >= f_k."""
    rank = RankingFunction(result.alpha, engine.normalization)
    from repro.graph.traversal import dijkstra_distances

    social = dijkstra_distances(engine.graph, result.query_user)
    in_result = set(result.users)
    fk = result.fk
    for user in range(engine.graph.n):
        if user == result.query_user or user in in_result:
            continue
        p = social.get(user, INF)
        d = engine.locations.distance(result.query_user, user)
        assert rank.score(p, d) >= fk - 1e-9
    # Scores reported must be the true f values.
    for nb in result.neighbors:
        p = social.get(nb.user, INF)
        d = engine.locations.distance(result.query_user, nb.user)
        assert math.isclose(nb.score, rank.score(p, d), abs_tol=1e-9)


@pytest.mark.parametrize("method", ["sfa", "spa", "tsa", "ais", "ais-bid"])
def test_definition_on_fixed_instance(method):
    graph, locations = random_instance(100, seed=411, coverage=0.8)
    engine = GeoSocialEngine(graph, locations, num_landmarks=3, s=3, seed=4)
    for user in list(locations.located_users())[:5]:
        result = engine.query(user, k=7, alpha=0.4, method=method)
        assert_definition_holds(engine, result)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_definition_random(seed):
    rng = random.Random(seed)
    n = rng.randint(15, 60)
    graph, locations = random_instance(n, seed % 4000, coverage=rng.choice([0.6, 1.0]))
    engine = GeoSocialEngine(graph, locations, num_landmarks=min(2, n), s=3, seed=1)
    located = list(locations.located_users())
    if not located:
        return
    user = rng.choice(located)
    result = engine.query(
        user, k=rng.choice([1, 4]), alpha=rng.choice([0.25, 0.75]), method="ais"
    )
    assert_definition_holds(engine, result)


def test_result_reports_raw_distances():
    """Neighbor.social/spatial must be raw (unnormalised) distances."""
    graph, locations = random_instance(60, seed=421, coverage=1.0)
    engine = GeoSocialEngine(graph, locations, num_landmarks=2, s=3)
    user = next(iter(engine.located_users()))
    result = engine.query(user, k=5, alpha=0.5, method="ais")
    for nb in result:
        assert nb.spatial == pytest.approx(engine.locations.distance(user, nb.user))
        assert nb.spatial <= engine.normalization.d_max + 1e-9


def test_cli_main(tmp_path, capsys):
    """The ``python -m repro.bench`` entry point end-to-end (tiny run)."""
    from repro.bench.__main__ import main

    out = tmp_path / "results.md"
    code = main(["table2", "fig7b", "--profile", "smoke", "--output", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Table 2" in captured
    assert "Figure 7b" in captured
    text = out.read_text()
    assert text.startswith("# Regenerated evaluation")
    assert "| alpha |" in text.replace("  ", " ")


def test_cli_rejects_unknown_experiment():
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig99"])
