"""Integration: every SSRQ algorithm must return the same answer.

This is the central correctness property of the reproduction — all of
SFA / SPA / TSA / TSA-QC / AIS (all variants) / the CH-backed variants /
AIS-Cache implement Definition 1, so on any input their score sequences
must coincide with brute force (users may differ only on exact score
ties at the boundary).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import METHODS, GeoSocialEngine
from tests.conftest import assert_same_scores, random_instance

# "approx" is excluded by construction: it answers from sketches with a
# bounded rank error, so its property is |score - exact| <= error_bound
# (pinned in tests/test_sketch.py), not score equality.
ALL_BUT_BRUTE = [m for m in METHODS if m not in ("bruteforce", "approx")]


class TestOnSharedEngine:
    @pytest.mark.parametrize("method", ALL_BUT_BRUTE)
    def test_matches_bruteforce_default_alpha(self, small_engine, query_users, method):
        for user in query_users:
            expected = small_engine.query(user, k=10, alpha=0.3, method="bruteforce")
            got = small_engine.query(user, k=10, alpha=0.3, method=method, t=50)
            assert_same_scores(expected, got)

    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("method", ["sfa", "spa", "tsa", "tsa-qc", "ais"])
    def test_alpha_sweep(self, small_engine, query_users, alpha, method):
        for user in query_users[:4]:
            expected = small_engine.query(user, k=8, alpha=alpha, method="bruteforce")
            got = small_engine.query(user, k=8, alpha=alpha, method=method)
            assert_same_scores(expected, got)

    @pytest.mark.parametrize("k", [1, 5, 40])
    def test_k_sweep(self, small_engine, query_users, k):
        for user in query_users[:3]:
            expected = small_engine.query(user, k=k, alpha=0.3, method="bruteforce")
            for method in ("sfa", "spa", "tsa", "ais", "ais-bid"):
                got = small_engine.query(user, k=k, alpha=0.3, method=method)
                assert_same_scores(expected, got)

    @pytest.mark.parametrize("alpha", [0.0, 1.0])
    def test_endpoint_alphas_route_and_agree(self, small_engine, query_users, alpha):
        for user in query_users[:3]:
            expected = small_engine.query(user, k=10, alpha=alpha, method="bruteforce")
            for method in ("sfa", "spa", "tsa", "tsa-qc", "ais"):
                got = small_engine.query(user, k=10, alpha=alpha, method=method)
                assert_same_scores(expected, got)

    def test_k_larger_than_finite_population(self, small_engine, query_users):
        user = query_users[0]
        expected = small_engine.query(user, k=5000, alpha=0.3, method="bruteforce")
        for method in ("sfa", "spa", "tsa", "ais"):
            got = small_engine.query(user, k=5000, alpha=0.3, method=method)
            assert_same_scores(expected, got)

    def test_results_exclude_query_user(self, small_engine, query_users):
        for method in ALL_BUT_BRUTE:
            result = small_engine.query(query_users[0], k=20, alpha=0.3, method=method, t=50)
            assert query_users[0] not in result.users

    def test_results_sorted_by_score(self, small_engine, query_users):
        for method in ALL_BUT_BRUTE:
            result = small_engine.query(query_users[1], k=20, alpha=0.3, method=method, t=50)
            scores = result.scores
            assert scores == sorted(scores)


@settings(max_examples=12, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_random_instances_agree(seed):
    """Random graphs, partial coverage, random query users, random
    parameters: all methods equal brute force."""
    rng = random.Random(seed)
    n = rng.randint(20, 90)
    coverage = rng.choice([0.5, 0.8, 1.0])
    graph, locations = random_instance(n, seed % 5000, coverage=coverage)
    engine = GeoSocialEngine(
        graph, locations, num_landmarks=min(3, n), s=3, seed=seed % 11
    )
    located = list(locations.located_users())
    if not located:
        return
    user = rng.choice(located)
    k = rng.choice([1, 3, 10])
    alpha = rng.choice([0.1, 0.3, 0.7])
    expected = engine.query(user, k=k, alpha=alpha, method="bruteforce")
    for method in ("sfa", "spa", "tsa", "tsa-plain", "tsa-qc", "ais", "ais-minus", "ais-bid", "ais-nosummary"):
        got = engine.query(user, k=k, alpha=alpha, method=method)
        assert_same_scores(expected, got)


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_ch_variants_agree(seed):
    """CH-backed variants (heavier preprocessing) on smaller instances."""
    rng = random.Random(seed)
    n = rng.randint(15, 40)
    graph, locations = random_instance(n, seed % 5000, coverage=0.9)
    engine = GeoSocialEngine(graph, locations, num_landmarks=min(3, n), s=3, seed=1)
    located = list(locations.located_users())
    if not located:
        return
    user = rng.choice(located)
    expected = engine.query(user, k=5, alpha=0.3, method="bruteforce")
    for method in ("sfa-ch", "spa-ch", "tsa-ch", "ais-cache"):
        got = engine.query(user, k=5, alpha=0.3, method=method, t=8)
        assert_same_scores(expected, got)
