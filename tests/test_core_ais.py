"""Behavioural tests for Aggregate Index Search and its variants."""

import math

import pytest

from repro.core.ais import AggregateIndexSearch, AISVariant
from repro.core.ranking import Normalization
from repro.graph.landmarks import LandmarkIndex
from repro.index.aggregate import AggregateIndex
from tests.conftest import assert_same_scores, random_instance

INF = math.inf


@pytest.fixture(scope="module")
def parts():
    graph, locations = random_instance(250, seed=331, coverage=0.85)
    norm = Normalization.estimate(graph, locations)
    landmarks = LandmarkIndex.build(graph, m=4, seed=3)
    index = AggregateIndex.build(locations, landmarks, s=4)
    return graph, locations, landmarks, index, norm


def make(parts, variant):
    graph, locations, landmarks, index, norm = parts
    return AggregateIndexSearch(graph, locations, landmarks, index, norm, variant)


def test_variants_agree(parts):
    _, locations, _, _, _ = parts
    full = make(parts, AISVariant.full())
    minus = make(parts, AISVariant.minus())
    bid = make(parts, AISVariant.bid())
    nosum = make(parts, AISVariant.no_summaries())
    for user in list(locations.located_users())[:6]:
        expected = full.search(user, 10, 0.3)
        for other in (minus, bid, nosum):
            assert_same_scores(expected, other.search(user, 10, 0.3))


def test_unlocated_query_rejected_at_mixed_alpha(parts):
    graph, locations, *_ = parts
    ais = make(parts, AISVariant.full())
    user = next(u for u in range(graph.n) if not locations.has_location(u))
    with pytest.raises(ValueError, match="location"):
        ais.search(user, 5, 0.5)


def test_delayed_evaluation_reduces_evaluations(parts):
    """Section 5.3: delayed evaluation postpones exact computations; it
    must never *increase* the number of evaluations."""
    _, locations, *_ = parts
    full = make(parts, AISVariant.full())
    minus = make(parts, AISVariant.minus())
    users = list(locations.located_users())[:10]
    ev_full = sum(full.search(u, 10, 0.3).stats.evaluations for u in users)
    ev_minus = sum(minus.search(u, 10, 0.3).stats.evaluations for u in users)
    assert ev_full <= ev_minus


def test_delayed_evaluation_reinsertions_counted(parts):
    _, locations, *_ = parts
    full = make(parts, AISVariant.full())
    minus = make(parts, AISVariant.minus())
    users = list(locations.located_users())[:10]
    assert all(minus.search(u, 10, 0.3).stats.reinsertions == 0 for u in users)
    # The full variant typically re-inserts at least once somewhere.
    total = sum(full.search(u, 10, 0.3).stats.reinsertions for u in users)
    assert total >= 0  # non-negative; >0 on most instances


def test_shared_forward_pops_fewer_than_bid(parts):
    """Figure 10's headline: computation sharing slashes graph work."""
    _, locations, *_ = parts
    minus = make(parts, AISVariant.minus())
    bid = make(parts, AISVariant.bid())
    users = list(locations.located_users())[:8]
    pops_minus = sum(minus.search(u, 10, 0.3).stats.pops_social for u in users)
    pops_bid = sum(bid.search(u, 10, 0.3).stats.pops_social for u in users)
    assert pops_minus < pops_bid


def test_social_summaries_prune(parts):
    """Dropping summaries must cost (weakly) more index pops."""
    _, locations, *_ = parts
    full = make(parts, AISVariant.full())
    nosum = make(parts, AISVariant.no_summaries())
    users = list(locations.located_users())[:8]
    pops_full = sum(full.search(u, 10, 0.5).stats.pops_index for u in users)
    pops_nosum = sum(nosum.search(u, 10, 0.5).stats.pops_index for u in users)
    assert pops_full <= pops_nosum


def test_cache_hits_recorded(parts):
    _, locations, *_ = parts
    full = make(parts, AISVariant.full())
    user = list(locations.located_users())[0]
    result = full.search(user, 30, 0.3)
    assert result.stats.cache_hits >= 0
    assert result.stats.pops_index > 0


def test_variant_flags():
    assert AISVariant.full().delayed_evaluation
    assert not AISVariant.minus().delayed_evaluation
    assert AISVariant.minus().share_forward
    assert not AISVariant.bid().share_forward
    assert not AISVariant.bid().cache_paths
    assert not AISVariant.no_summaries().use_social_summaries
