"""Unit tests for the CSR social graph."""

import pytest

from repro.graph.socialgraph import SocialGraph

TRIANGLE = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)]


class TestConstruction:
    def test_from_edges_undirected_stores_both_directions(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        assert sorted(dict(g.neighbors(0)).items()) == [(1, 1.0), (2, 4.0)]
        assert sorted(dict(g.neighbors(1)).items()) == [(0, 1.0), (2, 2.0)]
        assert g.num_edges == 3

    def test_directed_keeps_one_direction(self):
        g = SocialGraph.from_edges(2, [(0, 1, 1.0)], directed=True)
        assert dict(g.neighbors(0)) == {1: 1.0}
        assert dict(g.neighbors(1)) == {}

    def test_duplicate_edges_keep_min_weight(self):
        g = SocialGraph.from_edges(2, [(0, 1, 5.0), (1, 0, 2.0)])
        assert g.edge_weight(0, 1) == 2.0
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph.from_edges(2, [(1, 1, 1.0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph.from_edges(2, [(0, 5, 1.0)])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            SocialGraph.from_edges(2, [(0, 1, 0.0)])
        with pytest.raises(ValueError):
            SocialGraph.from_edges(2, [(0, 1, -3.0)])

    def test_isolated_vertices_allowed(self):
        g = SocialGraph.from_edges(5, [(0, 1, 1.0)])
        assert g.degree(4) == 0
        assert g.n == 5


class TestAccessors:
    def test_degree_and_average(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        assert g.degree(0) == 2
        assert g.average_degree == pytest.approx(2.0)
        assert g.max_degree == 2

    def test_has_edge_and_weight(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 1) if g.n else True
        assert g.edge_weight(1, 2) == 2.0
        assert g.edge_weight(0, 0) is None

    def test_edges_iterates_each_once(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        assert sorted(g.edges()) == sorted(TRIANGLE)

    def test_reverse_directed(self):
        g = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)], directed=True)
        rev = g.reverse()
        assert dict(rev.neighbors(1)) == {0: 1.0}
        assert dict(rev.neighbors(2)) == {1: 2.0}

    def test_reverse_undirected_is_self(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        assert g.reverse() is g


class TestDerived:
    def test_to_adjacency_roundtrip(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        adj = g.to_adjacency()
        g2 = SocialGraph.from_adjacency(adj)
        assert sorted(g2.edges()) == sorted(g.edges())

    def test_subgraph_relabels_and_keeps_internal_edges(self):
        g = SocialGraph.from_edges(4, TRIANGLE + [(2, 3, 1.0)])
        sub, mapping = g.subgraph([0, 1, 3])
        assert sub.n == 3
        # Only the (0,1) edge survives; 3 connects to 2 which is absent.
        assert sorted(sub.edges()) == [(mapping[0], mapping[1], 1.0)]

    def test_with_edge_update_change_weight(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        g2 = g.with_edge_update(0, 1, 9.0)
        assert g2.edge_weight(0, 1) == 9.0
        assert g.edge_weight(0, 1) == 1.0  # original untouched

    def test_with_edge_update_insert_and_delete(self):
        g = SocialGraph.from_edges(3, [(0, 1, 1.0)])
        g2 = g.with_edge_update(1, 2, 0.5)
        assert g2.has_edge(1, 2)
        g3 = g2.with_edge_update(0, 1, None)
        assert not g3.has_edge(0, 1)
        assert g3.has_edge(1, 2)

    def test_repr_mentions_size(self):
        g = SocialGraph.from_edges(3, TRIANGLE)
        assert "n=3" in repr(g)
