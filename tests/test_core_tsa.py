"""Behavioural tests for the Twofold Search Approach."""

import math

import pytest

from repro.core.ranking import Normalization
from repro.core.tsa import TwofoldSearch
from repro.graph.landmarks import LandmarkIndex
from repro.spatial.grid import UniformGrid
from tests.conftest import assert_same_scores, random_instance

INF = math.inf


@pytest.fixture(scope="module")
def parts():
    graph, locations = random_instance(250, seed=321, coverage=0.85)
    norm = Normalization.estimate(graph, locations)
    grid = UniformGrid.build(locations, 12)
    landmarks = LandmarkIndex.build(graph, m=4, seed=2)
    return graph, locations, grid, norm, landmarks


def test_invalid_policy(parts):
    graph, locations, grid, norm, _ = parts
    with pytest.raises(ValueError, match="policy"):
        TwofoldSearch(graph, locations, grid, norm, probe_policy="zigzag")


def test_endpoint_alphas_rejected(parts):
    graph, locations, grid, norm, _ = parts
    tsa = TwofoldSearch(graph, locations, grid, norm)
    user = next(locations.located_users())
    with pytest.raises(ValueError):
        tsa.search(user, 5, 0.0)
    with pytest.raises(ValueError):
        tsa.search(user, 5, 1.0)


def test_unlocated_query_rejected(parts):
    graph, locations, grid, norm, _ = parts
    tsa = TwofoldSearch(graph, locations, grid, norm)
    user = next(u for u in range(graph.n) if not locations.has_location(u))
    with pytest.raises(ValueError, match="location"):
        tsa.search(user, 5, 0.5)


def test_landmark_pruning_preserves_result(parts):
    graph, locations, grid, norm, landmarks = parts
    plain = TwofoldSearch(graph, locations, grid, norm, landmarks=None)
    aided = TwofoldSearch(graph, locations, grid, norm, landmarks=landmarks)
    for user in list(locations.located_users())[:6]:
        assert_same_scores(plain.search(user, 10, 0.3), aided.search(user, 10, 0.3))


def test_quick_combine_preserves_result(parts):
    graph, locations, grid, norm, landmarks = parts
    rr = TwofoldSearch(graph, locations, grid, norm, landmarks=landmarks)
    qc = TwofoldSearch(
        graph, locations, grid, norm, landmarks=landmarks, probe_policy="quick-combine"
    )
    for user in list(locations.located_users())[:6]:
        assert_same_scores(rr.search(user, 10, 0.3), qc.search(user, 10, 0.3))


def test_uses_both_domains(parts):
    graph, locations, grid, norm, landmarks = parts
    tsa = TwofoldSearch(graph, locations, grid, norm, landmarks=landmarks)
    user = next(locations.located_users())
    result = tsa.search(user, 10, 0.5)
    assert result.stats.pops_social > 0
    assert result.stats.pops_spatial > 0


def test_tighter_than_single_domain_bounds(parts):
    """TSA's combined bound must not be worse than BOTH one-domain
    methods at once (Section 4.2's motivation): its total pops are at
    most max(SFA pops, SPA pops) on typical instances.  We check the
    weaker, always-true property that it terminates."""
    graph, locations, grid, norm, landmarks = parts
    from repro.core.sfa import SocialFirstSearch
    from repro.core.spa import SpatialFirstSearch

    sfa = SocialFirstSearch(graph, locations, norm)
    spa = SpatialFirstSearch(graph, locations, grid, norm)
    tsa = TwofoldSearch(graph, locations, grid, norm, landmarks=landmarks)
    users = list(locations.located_users())[:8]
    tsa_total = sum(tsa.search(u, 10, 0.5).stats.pops for u in users)
    single_best = min(
        sum(sfa.search(u, 10, 0.5).stats.pops for u in users),
        sum(spa.search(u, 10, 0.5).stats.pops for u in users),
    )
    # TSA should not be dramatically worse than the better single-domain
    # method (paper Fig. 8: it is strictly better on pop ratio).
    assert tsa_total <= 2 * single_best
