"""The paper's own worked examples, as executable tests.

Where the paper walks through a concrete instance (the TSA example of
Figure 2, the AIS bound example of Figure 4), we encode the instance
and check our implementation tells the same story.
"""

import math

from repro.core.ranking import Normalization, RankingFunction
from repro.core.result import TopKBuffer
from repro.index.bounds import social_lower_bound

INF = math.inf


class TestFigure2TSAExample:
    """Figure 2: eight users with given (normalised) Euclidean and
    social distances from u_q; k=2, alpha=0.5; the paper derives
    R = {u1, u7} with f values 0.1 and 0.35."""

    D = {1: 0.1, 7: 0.1, 8: 0.6, 6: 0.7, 5: 0.7, 4: 0.8, 3: 0.9, 2: 0.9}
    P = {1: 0.1, 7: 0.6, 8: 0.2, 6: 0.5, 5: 0.2, 4: 0.1, 3: 0.3, 2: 0.4}

    def rank(self) -> RankingFunction:
        # Distances are already normalised in the example.
        return RankingFunction(0.5, Normalization(p_max=1.0, d_max=1.0))

    def test_paper_f_values(self):
        rank = self.rank()
        assert rank.score(self.P[1], self.D[1]) == 0.1
        # Paper: u4 enters with f = 0.45, then u8 with 0.4 replaces it.
        assert rank.score(self.P[4], self.D[4]) == 0.45
        assert rank.score(self.P[8], self.D[8]) == 0.4
        # Final result: u1 (0.1) and u7 (0.35).
        assert rank.score(self.P[7], self.D[7]) == 0.35

    def test_final_result_is_u1_u7(self):
        rank = self.rank()
        buffer = TopKBuffer(2)
        for u in self.D:
            buffer.offer(u, rank.score(self.P[u], self.D[u]), self.P[u], self.D[u])
        assert [nb.user for nb in buffer.neighbors()] == [1, 7]
        assert buffer.fk == 0.35

    def test_phase1_threshold_matches_paper(self):
        """At the point the paper ends phase 1: t_p = 0.2, t_d = 0.6,
        θ = 0.4 = f_k, so the phase terminates."""
        rank = self.rank()
        theta = rank.social_part(0.2) + rank.spatial_part(0.6)
        assert theta == 0.4
        fk = 0.4  # R = {u1, u8} at that moment
        assert theta >= fk

    def test_phase2_candidate_bound(self):
        """Phase 2 starts with Q = {u7}: θ' = 0.5·0.2 + 0.5·0.1 = 0.15
        < f_k = 0.4, so u7 must be resolved — and indeed it wins."""
        import pytest

        rank = self.rank()
        theta2 = rank.social_part(0.2) + rank.spatial_part(self.D[7])
        assert theta2 == pytest.approx(0.15)
        assert theta2 < 0.4


class TestFigure4AISBoundExample:
    """Figure 4: a cell with three users at landmark distances 4, 3, 1;
    the query vertex is at landmark distance 0 (it is adjacent to the
    landmark side).  The paper derives m̂ = 4, m̌ = 1 and a bound
    p̌(v_q, C) = 1 — 'as tight as if the exact landmark information of
    individual users was accessed'."""

    def test_summary_and_bound(self):
        from repro.index.summaries import SocialSummary

        summary = SocialSummary.of_vectors(1, [(4.0,), (3.0,), (1.0,)])
        assert summary.m_hat == [4.0]
        assert summary.m_check == [1.0]
        # Paper's q has landmark distance m_q1 = 0 -> bound = 1 - 0 = 1.
        assert social_lower_bound([0.0], summary.m_check, summary.m_hat) == 1.0

    def test_bound_tight_as_individual(self):
        # Tightest individual bound: min over members of |m_i - m_q| = 1.
        individual = min(abs(m - 0.0) for m in (4.0, 3.0, 1.0))
        summary_bound = social_lower_bound([0.0], [1.0], [4.0])
        assert summary_bound == individual
