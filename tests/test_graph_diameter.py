"""Tests for diameter estimation."""

import math

import networkx as nx

from repro.graph.diameter import double_sweep_diameter
from repro.graph.socialgraph import SocialGraph
from tests.conftest import random_graph


def exact_weighted_diameter(g: SocialGraph) -> float:
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
    best = 0.0
    for source in range(g.n):
        lengths = nx.single_source_dijkstra_path_length(nxg, source)
        best = max(best, max(lengths.values()))
    return best


def test_path_graph_exact():
    g = SocialGraph.from_edges(5, [(i, i + 1, 1.0) for i in range(4)])
    assert double_sweep_diameter(g) == 4.0


def test_lower_bounds_true_diameter():
    g = random_graph(60, 4.0, seed=71)
    estimate = double_sweep_diameter(g, sweeps=3, seed=1)
    exact = exact_weighted_diameter(g)
    assert estimate <= exact + 1e-9
    # Double sweep is empirically tight; require at least half.
    assert estimate >= exact / 2


def test_positive_on_connected_graph():
    g = random_graph(30, 4.0, seed=72)
    assert double_sweep_diameter(g) > 0


def test_deterministic_for_seed():
    g = random_graph(40, 4.0, seed=73)
    assert double_sweep_diameter(g, seed=5) == double_sweep_diameter(g, seed=5)


def test_disconnected_graph_uses_finite_distances():
    g = SocialGraph.from_edges(5, [(0, 1, 2.0), (2, 3, 1.0), (3, 4, 1.0)])
    est = double_sweep_diameter(g, sweeps=4, seed=0)
    assert est in (2.0, 1.0, 2.0) or 0 < est <= 2.0
    assert math.isfinite(est)


def test_empty_graph():
    g = SocialGraph.from_edges(0, [])
    assert double_sweep_diameter(g) == 0.0


def test_edgeless_graph():
    g = SocialGraph.from_edges(3, [])
    assert double_sweep_diameter(g) == 0.0
