"""Unit tests for the counting min-heap."""

import pytest

from repro.utils.heaps import MinHeap


def test_push_pop_orders_by_key():
    heap = MinHeap()
    for key in [5.0, 1.0, 3.0, 2.0, 4.0]:
        heap.push((key, int(key)))
    assert [heap.pop()[0] for _ in range(5)] == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_pop_counter_counts_every_pop():
    heap = MinHeap([(1.0, "a"), (2.0, "b")])
    assert heap.pops == 0
    heap.pop()
    heap.pop()
    assert heap.pops == 2


def test_peek_does_not_count_or_remove():
    heap = MinHeap([(2.0, "b"), (1.0, "a")])
    assert heap.peek() == (1.0, "a")
    assert heap.peek_key() == 1.0
    assert heap.pops == 0
    assert len(heap) == 2


def test_tuple_tie_breaking_is_deterministic():
    heap = MinHeap()
    heap.push((1.0, 2, "second"))
    heap.push((1.0, 1, "first"))
    assert heap.pop()[2] == "first"
    assert heap.pop()[2] == "second"


def test_init_heapifies_unordered_items():
    heap = MinHeap([(3.0,), (1.0,), (2.0,)])
    assert heap.peek_key() == 1.0


def test_bool_and_len():
    heap = MinHeap()
    assert not heap
    assert len(heap) == 0
    heap.push((1.0,))
    assert heap
    assert len(heap) == 1


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        MinHeap().pop()


def test_clear_empties_heap_but_keeps_pop_count():
    heap = MinHeap([(1.0,), (2.0,)])
    heap.pop()
    heap.clear()
    assert not heap
    assert heap.pops == 1
