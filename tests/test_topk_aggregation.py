"""Direct contract tests for the top-k aggregation primitives:
:mod:`repro.topk.ca` (Combined Algorithm), :mod:`repro.topk.nra`
(No-Random-Access), and :mod:`repro.topk.quick_combine` (probe
scheduling).

These pin the *contracts* the engine paths rely on but only exercise
indirectly (TSA-QC plugs the policy into its phase-1 interleave; the
TA-family cost model motivates the twofold bounds):

- reported scores are **exact**, never worst-case interval bounds;
- ties are deterministic (smaller id wins) across algorithms;
- the access-cost model holds: NRA performs zero random accesses, CA
  performs at most one random access per ``kappa`` sorted accesses
  (plus the ≤ ``k·m`` final resolution), and both degrade gracefully
  when sources exhaust without a termination proof;
- the Quick Combine policy starves no active stream and prioritises
  unexplored ones.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topk.ca import combined_algorithm
from repro.topk.nra import no_random_access
from repro.topk.quick_combine import QuickCombinePolicy, RoundRobinPolicy
from repro.topk.sources import SortedSource


def combine_sum(values):
    return sum(values)


def make_sources(rows: dict[int, tuple[float, ...]], m: int) -> list[SortedSource]:
    return [SortedSource({i: row[j] for i, row in rows.items()}) for j in range(m)]


def brute(rows: dict[int, tuple[float, ...]], k: int) -> list[tuple[float, int]]:
    scored = sorted((combine_sum(row), i) for i, row in rows.items())
    return scored[:k]


# -- shared exactness / tie-break contracts ---------------------------


@pytest.mark.parametrize("algo", [no_random_access, combined_algorithm])
class TestExactScores:
    def test_reported_scores_are_point_values_not_bounds(self, algo):
        """A winner surfaced early (small first attribute) must still be
        reported with its fully-resolved score, not an interval end."""
        rows = {
            0: (0.01, 5.0),  # tiny first column, large second
            1: (1.0, 1.0),
            2: (2.0, 2.0),
            3: (3.0, 3.0),
        }
        got = algo(make_sources(rows, 2), combine_sum, 2)
        assert got == brute(rows, 2)

    def test_ties_break_toward_smaller_id(self, algo):
        rows = {7: (1.0, 1.0), 3: (1.0, 1.0), 5: (1.0, 1.0), 9: (9.0, 9.0)}
        got = algo(make_sources(rows, 2), combine_sum, 2)
        assert [i for _, i in got] == [3, 5]

    def test_zero_sources_yield_empty(self, algo):
        assert algo([], combine_sum, 3) == []

    def test_single_source(self, algo):
        rows = {0: (3.0,), 1: (1.0,), 2: (2.0,)}
        assert algo(make_sources(rows, 1), combine_sum, 2) == [(1.0, 1), (2.0, 2)]

    def test_exhaustion_without_proof_returns_best_seen(self, algo):
        """k larger than the population: sources exhaust, every tuple is
        fully known, and the full ranking comes back."""
        rows = {i: (float(i), float(10 - i)) for i in range(6)}
        got = algo(make_sources(rows, 2), combine_sum, 50)
        assert got == brute(rows, 50)
        assert len(got) == 6


@settings(max_examples=30, deadline=None, derandomize=True)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=1, max_value=40),
    m=st.integers(min_value=1, max_value=4),
    k=st.integers(min_value=1, max_value=8),
    duplicates=st.booleans(),
)
def test_property_nra_and_ca_match_bruteforce(seed, n, m, k, duplicates):
    """Randomized instances — with heavy value duplication when
    ``duplicates`` (ties are the historical bug surface)."""
    rng = random.Random(seed)
    pool = [0.0, 0.5, 1.0] if duplicates else None
    rows = {
        i: tuple(rng.choice(pool) if pool else rng.uniform(0, 10) for _ in range(m))
        for i in range(n)
    }
    expected = brute(rows, k)
    for algo, kwargs in (
        (no_random_access, {}),
        (no_random_access, {"check_every": 3}),
        (combined_algorithm, {}),
        (combined_algorithm, {"kappa": 2}),
    ):
        got = algo(make_sources(rows, m), combine_sum, k, **kwargs)
        # Exact scores always; ids only where the score is unique — the
        # TA family terminates at non-strict bounds, so boundary ties
        # may legitimately resolve to either id (the SSRQ searchers add
        # their own deterministic tie-break on top).
        assert [round(s, 9) for s, _ in got] == [
            round(s, 9) for s, _ in expected
        ], f"{algo.__name__}({kwargs})"
        all_scores = [round(combine_sum(row), 9) for row in rows.values()]
        for (score, got_id), (_, want_id) in zip(got, expected):
            if all_scores.count(round(score, 9)) == 1:
                assert got_id == want_id, f"{algo.__name__}({kwargs})"


# -- access-cost contracts --------------------------------------------


class TestAccessCosts:
    def test_nra_never_random_accesses(self):
        rng = random.Random(4)
        rows = {i: (rng.random(), rng.random(), rng.random()) for i in range(120)}
        sources = make_sources(rows, 3)
        no_random_access(sources, combine_sum, 4)
        assert all(s.random_accesses == 0 for s in sources)

    def test_ca_random_access_budget_respects_kappa(self):
        """CA's deal: one resolving random access per ``kappa`` sorted
        accesses, plus at most ``k·m`` to exactify the winners."""
        rng = random.Random(5)
        rows = {i: (rng.random(), rng.random()) for i in range(150)}
        k, kappa, m = 3, 10, 2
        sources = make_sources(rows, m)
        combined_algorithm(sources, combine_sum, k, kappa=kappa)
        sorted_total = sum(s.sorted_accesses for s in sources)
        random_total = sum(s.random_accesses for s in sources)
        assert random_total <= sorted_total // kappa + k * m

    def test_ca_kappa_one_resolves_aggressively(self):
        rng = random.Random(6)
        rows = {i: (rng.random(), rng.random()) for i in range(60)}
        eager = make_sources(rows, 2)
        combined_algorithm(eager, combine_sum, 2, kappa=1)
        lazy = make_sources(rows, 2)
        combined_algorithm(lazy, combine_sum, 2, kappa=50)
        assert sum(s.random_accesses for s in eager) >= sum(
            s.random_accesses for s in lazy
        )

    def test_ca_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            combined_algorithm([], combine_sum, 0)
        with pytest.raises(ValueError):
            combined_algorithm([], combine_sum, 1, kappa=0)

    def test_nra_rejects_bad_k(self):
        with pytest.raises(ValueError):
            no_random_access([], combine_sum, 0)

    def test_early_termination_leaves_sources_unexhausted(self):
        """A clear separation between the top-k and the rest must stop
        both algorithms before they drain the columns."""
        n = 400
        rows = {i: (0.001 * i, 0.001 * i) for i in range(5)}
        rows.update({i: (50.0 + i, 50.0 + i) for i in range(5, n)})
        for algo in (no_random_access, combined_algorithm):
            sources = make_sources(rows, 2)
            got = algo(sources, combine_sum, 3)
            assert [i for _, i in got] == [0, 1, 2]
            assert any(s.sorted_accesses < len(s) for s in sources), algo.__name__


# -- probe-scheduling policies ----------------------------------------


class TestQuickCombinePolicy:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QuickCombinePolicy(())
        with pytest.raises(ValueError):
            QuickCombinePolicy((0.5, -0.1))
        with pytest.raises(ValueError):
            QuickCombinePolicy((0.5, 0.5), window=1)

    def test_rate_is_inf_until_two_observations(self):
        policy = QuickCombinePolicy((1.0, 1.0))
        assert policy.rate(0) == float("inf")
        policy.observe(0, 1.0)
        assert policy.rate(0) == float("inf")
        policy.observe(0, 3.0)
        assert policy.rate(0) == pytest.approx(2.0)

    def test_rate_windows_old_history_out(self):
        policy = QuickCombinePolicy((1.0,), window=3)
        for value in (0.0, 100.0, 100.0, 100.0):
            policy.observe(0, value)
        # the 0.0 observation fell out of the window: rate is flat now
        assert policy.rate(0) == pytest.approx(0.0)

    def test_round_robin_fallback_on_equal_rates_starves_nobody(self):
        policy = QuickCombinePolicy((0.5, 0.5, 0.5))
        for stream in range(3):
            for i in range(4):
                policy.observe(stream, float(i))
        chosen = [policy.choose((True, True, True)) for _ in range(9)]
        assert set(chosen) == {0, 1, 2}, f"starved a stream: {chosen}"

    def test_choose_requires_an_active_stream(self):
        policy = QuickCombinePolicy((0.5, 0.5))
        with pytest.raises(ValueError):
            policy.choose((False, False))

    def test_inactive_streams_never_chosen(self):
        policy = QuickCombinePolicy((0.5, 0.5))
        for i in range(4):
            policy.observe(0, i * 10.0)
            policy.observe(1, i * 0.1)
        assert policy.choose((False, True)) == 1


class TestRoundRobinPolicy:
    def test_strict_alternation(self):
        policy = RoundRobinPolicy(2)
        assert [policy.choose((True, True)) for _ in range(4)] == [0, 1, 0, 1]

    def test_skips_inactive_streams(self):
        policy = RoundRobinPolicy(3)
        assert policy.choose((False, True, True)) == 1
        assert policy.choose((False, True, True)) == 2
        assert policy.choose((False, True, True)) == 1

    def test_observe_is_interface_noop(self):
        policy = RoundRobinPolicy(2)
        policy.observe(0, 123.0)
        assert policy.choose((True, True)) == 0

    def test_no_active_stream_raises(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(2).choose((False, False))
