"""The ``repro`` operator CLI: golden behaviour in all three formats.

Outputs are asserted *relationally* rather than against frozen float
literals: the same rows must render through every format, and the
rendered values must equal what the engine itself returns — so the
suite stays meaningful under both kernel backends (whose floats can
legitimately differ at the last ulp) while still pinning the exact
output contract (headers, column order, row order, value formatting).
"""

from __future__ import annotations

import csv
import io
import json
import threading
import time

import pytest

click = pytest.importorskip("click", reason="the CLI is an optional extra")

from click.testing import CliRunner  # noqa: E402

from repro import GeoSocialEngine, QueryService  # noqa: E402
from repro.cli.format import flatten_stats, format_output  # noqa: E402
from repro.cli.commands import DATASETS, cli  # noqa: E402
from repro.server import ServerClient, ServerThread  # noqa: E402
from repro.service.model import result_payload  # noqa: E402


@pytest.fixture(scope="module")
def runner() -> CliRunner:
    return CliRunner()


@pytest.fixture(scope="module")
def engine_dir(runner, tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("cli") / "engine.store")
    result = runner.invoke(
        cli, ["load", path, "--dataset", "gowalla", "--n", "250", "--seed", "7"]
    )
    assert result.exit_code == 0, result.output
    return path


@pytest.fixture(scope="module")
def engine(engine_dir) -> GeoSocialEngine:
    return GeoSocialEngine.load(engine_dir)


@pytest.fixture(scope="module")
def query_user(engine) -> int:
    return sorted(engine.locations.located_users())[0]


@pytest.fixture(scope="module")
def served(engine):
    with QueryService(engine) as service:
        with ServerThread(service, workers=2, heartbeat_s=0.2) as handle:
            yield handle


@pytest.fixture(scope="module")
def address(served) -> str:
    return f"{served.host}:{served.port}"


# -- formatting primitives ---------------------------------------------


def test_format_output_formats_agree():
    rows = [
        {"user": 3, "score": 0.5, "note": None},
        {"user": 11, "score": 0.125, "note": "x"},
    ]
    columns = ["user", "score", "note"]
    table = format_output(rows, columns, "table")
    lines = table.splitlines()
    assert lines[0].split() == columns
    assert set(lines[1]) <= {"-", " "}
    assert lines[2].split() == ["3", "0.5"]  # None renders empty
    as_csv = list(csv.reader(io.StringIO(format_output(rows, columns, "csv"))))
    assert as_csv[0] == columns
    assert as_csv[1] == ["3", "0.5", ""]
    as_json = json.loads(format_output(rows, columns, "json"))
    assert as_json == [
        {"user": 3, "score": 0.5, "note": None},
        {"user": 11, "score": 0.125, "note": "x"},
    ]


def test_format_output_rejects_unknown_format():
    with pytest.raises(ValueError, match="unknown format"):
        format_output([], ["a"], "xml")


def test_flatten_stats_dotted_keys():
    rows = flatten_stats({"service": {"requests": 2, "per_method": {"spa": 1}}})
    assert {"section": "service", "key": "requests", "value": 2} in rows
    assert {"section": "service", "key": "per_method.spa", "value": 1} in rows


# -- load / query (local engine) ---------------------------------------


def test_load_reports_engine_shape(runner, engine_dir, engine):
    # the fixture already ran `load`; verify what it persisted
    assert engine.graph.n == 250


def test_query_local_golden(runner, engine_dir, engine, query_user):
    """The table/csv/json outputs all carry exactly the engine's own
    answer, in rank order, formatted by the shared formatter."""
    expected = result_payload(engine.query(query_user, k=5, alpha=0.3, method="ais"))
    expected_rows = [
        dict(rank=i, **nb) for i, nb in enumerate(expected["neighbors"])
    ]
    columns = ["rank", "user", "score", "social", "spatial"]
    for fmt in ("table", "csv", "json"):
        result = runner.invoke(
            cli,
            ["query", str(query_user), "--engine", engine_dir, "-k", "5",
             "--alpha", "0.3", "--format", fmt],
        )
        assert result.exit_code == 0, result.output
        assert result.output.rstrip("\n") == format_output(expected_rows, columns, fmt)
    # csv is machine-parseable back to the same users
    result = runner.invoke(
        cli,
        ["query", str(query_user), "--engine", engine_dir, "-k", "5",
         "--alpha", "0.3", "--format", "csv"],
    )
    parsed = list(csv.DictReader(io.StringIO(result.output)))
    assert [int(row["user"]) for row in parsed] == expected["users"]


def test_query_requires_exactly_one_target(runner, engine_dir, query_user):
    result = runner.invoke(cli, ["query", str(query_user)])
    assert result.exit_code != 0
    assert "exactly one of --engine or --server" in result.output
    result = runner.invoke(
        cli,
        ["query", str(query_user), "--engine", engine_dir, "--server", "x:1"],
    )
    assert result.exit_code != 0


def test_query_error_is_clean_not_traceback(runner, engine_dir):
    result = runner.invoke(cli, ["query", "999999", "--engine", engine_dir])
    assert result.exit_code == 1
    assert "out of range" in result.output
    assert "Traceback" not in result.output


# -- server-backed commands --------------------------------------------


def test_query_against_server_matches_local(runner, engine_dir, address, engine, query_user):
    over_http = runner.invoke(
        cli, ["query", str(query_user), "--server", address, "-k", "5", "--format", "csv"]
    )
    local = runner.invoke(
        cli, ["query", str(query_user), "--engine", engine_dir, "-k", "5", "--format", "csv"]
    )
    assert over_http.exit_code == 0, over_http.output
    assert over_http.output == local.output


def test_stats_command_all_formats(runner, address):
    as_json = runner.invoke(cli, ["stats", "--server", address, "--format", "json"])
    assert as_json.exit_code == 0, as_json.output
    payload = json.loads(as_json.output)
    assert "server" in payload and "service" in payload
    table = runner.invoke(cli, ["stats", "--server", address])
    assert table.exit_code == 0
    assert table.output.splitlines()[0].split() == ["section", "key", "value"]
    as_csv = runner.invoke(cli, ["stats", "--server", address, "--format", "csv"])
    rows = list(csv.DictReader(io.StringIO(as_csv.output)))
    sections = {row["section"] for row in rows}
    assert {"service", "cache", "server", "engine"} <= sections


def test_snapshot_restore_commands(runner, address, tmp_path):
    root = str(tmp_path / "snaps")
    result = runner.invoke(cli, ["snapshot", root, "--server", address])
    assert result.exit_code == 0, result.output
    assert "snapshot-" in result.output
    result = runner.invoke(cli, ["restore", root, "--server", address])
    assert result.exit_code == 0, result.output
    assert "restored GeoSocialEngine with 250 users" in result.output


def test_snapshot_local_engine(runner, engine_dir, tmp_path):
    root = str(tmp_path / "local-snaps")
    result = runner.invoke(cli, ["snapshot", root, "--engine", engine_dir])
    assert result.exit_code == 0, result.output
    assert "snapshot-" in result.output


def test_tail_streams_events(runner, served, address, query_user):
    """`repro tail --count 2` prints the snapshot then one delta as
    JSON lines, and exits on its own."""
    out: dict = {}

    def run_tail() -> None:
        out["result"] = runner.invoke(
            cli,
            ["tail", str(query_user), "--server", address, "-k", "5",
             "--count", "2", "--format", "json"],
        )

    thread = threading.Thread(target=run_tail)
    thread.start()
    time.sleep(0.4)
    with ServerClient(served.host, served.port) as client:
        client.move(query_user, 0.271, 0.828)
    thread.join(timeout=30)
    result = out["result"]
    assert result.exit_code == 0, result.output
    lines = [json.loads(line) for line in result.output.splitlines()]
    assert len(lines) == 2
    assert lines[0]["event"] == "snapshot"
    assert lines[0]["payload"]["user"] == query_user
    assert lines[1]["event"] == "delta"


def test_tail_table_has_header(runner, served, address, query_user):
    out: dict = {}

    def run_tail() -> None:
        out["result"] = runner.invoke(
            cli,
            ["tail", str(query_user), "--server", address, "-k", "5",
             "--count", "1", "--format", "table"],
        )

    thread = threading.Thread(target=run_tail)
    thread.start()
    thread.join(timeout=30)
    result = out["result"]
    assert result.exit_code == 0, result.output
    lines = result.output.splitlines()
    assert lines[0].split() == ["event", "entered", "left", "moved", "size"]
    assert lines[1].startswith(("snapshot", "suspended"))


def test_dataset_registry_is_complete():
    assert set(DATASETS) == {"gowalla", "foursquare", "twitter", "correlated"}


def test_version_flag(runner):
    import repro

    result = runner.invoke(cli, ["--version"])
    assert result.exit_code == 0
    assert repro.__version__ in result.output


def test_missing_click_message_is_helpful():
    """The gated entry point explains the optional extra instead of
    tracebacking when click is absent."""
    import builtins
    import sys

    from repro import cli as cli_package

    real_import = builtins.__import__
    saved = {
        name: sys.modules.pop(name)
        for name in list(sys.modules)
        if name == "repro.cli.commands" or name == "click" or name.startswith("click.")
    }

    def no_click(name, *args, **kwargs):
        if name == "click" or name.startswith("click."):
            raise ModuleNotFoundError(f"No module named {name!r}", name=name)
        return real_import(name, *args, **kwargs)

    builtins.__import__ = no_click
    try:
        with pytest.raises(SystemExit) as excinfo:
            cli_package.main()
        assert excinfo.value.code == 1
    finally:
        builtins.__import__ = real_import
        sys.modules.update(saved)
