"""Endpoint-routing dispatch pin: every path routes identically.

The historical bug class this pins shut: ``route_method`` used to be
consulted in some dispatch paths but not others (e.g. the service's
cache keys stored the *requested* method while the engine executed the
*routed* one).  After folding the routing tables into the planner's
rule layer (:mod:`repro.plan.rules`), every path — ``engine.query``,
``engine.query_many``, the sharded engine, and the cached service —
must resolve an ``alpha ∈ {0, 1}`` endpoint query to the same concrete
method, observable on ``result.method`` and in the service's cache
keys / per-method stats.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AUTO, METHODS, GeoSocialEngine, route_method
from repro.service import QueryRequest, QueryService
from repro.shard import ShardedGeoSocialEngine
from tests.conftest import random_instance

#: requested methods covering every routing family plus auto
REQUESTED = ("sfa", "spa", "tsa", "tsa-plain", "tsa-qc", "ais", "ais-minus", "bruteforce", AUTO)
ENDPOINTS = (0.0, 1.0)


@pytest.fixture(scope="module")
def instance():
    graph, locations = random_instance(150, seed=13, coverage=1.0)
    return graph, locations


@pytest.fixture(scope="module")
def single(instance):
    graph, locations = instance
    return GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=5)


@pytest.fixture(scope="module")
def sharded(instance):
    graph, locations = instance
    return ShardedGeoSocialEngine(
        graph, locations, n_shards=4, num_landmarks=3, s=4, seed=5, max_workers=1
    )


def expected_endpoint(method: str, alpha: float) -> str:
    if method == AUTO:
        return "spa" if alpha == 0.0 else "sfa"
    return route_method(method, alpha)


@pytest.mark.parametrize("alpha", ENDPOINTS)
@pytest.mark.parametrize("method", REQUESTED)
def test_endpoint_dispatch_identical_across_all_paths(single, sharded, method, alpha):
    user, k = 3, 5
    expected = expected_endpoint(method, alpha)

    # 1. engine.query
    direct = single.query(user, k, alpha, method)
    assert direct.method == expected, f"engine.query dispatched {direct.method}"

    # 2. engine.query_many (service-backed batch)
    batch = single.query_many([user, user + 1], k=k, alpha=alpha, method=method)
    assert [r.method for r in batch] == [expected, expected]

    # 3. sharded engine (scatter or delegated — same resolution)
    via_shards = sharded.query(user, k, alpha, method)
    assert via_shards.method == expected, f"sharded dispatched {via_shards.method}"
    sharded_batch = sharded.query_many([user], k=k, alpha=alpha, method=method)
    assert sharded_batch[0].method == expected

    # 4. cached service: the executed method, the per-method stats, and
    #    the cache key all carry the resolved name
    service = QueryService(single, cache_size=8, max_workers=1)
    try:
        response = service.query(QueryRequest(user=user, k=k, alpha=alpha, method=method))
        assert response.result.method == expected
        assert service.stats.per_method == {expected: 1}
        (key,) = list(service.cache._entries)
        assert key[3] == expected, f"cache key stores {key[3]!r}, not the resolved method"
        # the replay hits the same resolved-method line
        replay = service.query(QueryRequest(user=user, k=k, alpha=alpha, method=method))
        assert replay.cached and replay.result.method == expected
    finally:
        service.close()

    # 5. results agree with the explicitly-routed method bit-for-bit
    explicit = single.query(user, k, alpha, expected)
    assert direct.users == explicit.users
    assert direct.scores == explicit.scores


def test_endpoint_aliases_share_one_cache_line(single):
    """tsa@alpha=0, spa@alpha=0 and auto@alpha=0 are one query now: the
    resolved-method key collapses them to a single cached entry."""
    service = QueryService(single, cache_size=8, max_workers=1)
    try:
        first = service.query(QueryRequest(user=2, k=4, alpha=0.0, method="tsa"))
        assert not first.cached
        for alias in ("spa", "tsa-qc", AUTO, "sfa"):
            again = service.query(QueryRequest(user=2, k=4, alpha=0.0, method=alias))
            assert again.cached, f"{alias} missed the shared endpoint line"
        assert len(service.cache) == 1
    finally:
        service.close()


def test_interior_alpha_does_not_route(single):
    for method in METHODS:
        result = single.query(1, 4, 0.5, method, t=20)
        assert result.method == method
