"""Tests for per-cell social summary maintenance."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.summaries import SocialSummary

INF = math.inf


def test_empty_summary():
    s = SocialSummary(2)
    assert s.empty
    assert s.m_check == [INF, INF]


def test_of_vectors_min_max():
    s = SocialSummary.of_vectors(2, [(1.0, 5.0), (3.0, 2.0)])
    assert s.m_check == [1.0, 2.0]
    assert s.m_hat == [3.0, 5.0]
    assert not s.empty


def test_widen_reports_changes():
    s = SocialSummary.of_vectors(1, [(2.0,)])
    assert s.widen((5.0,)) is True
    assert s.widen((3.0,)) is False  # inside [2, 5]
    assert s.m_hat == [5.0]


def test_touches_boundary_vectors():
    s = SocialSummary.of_vectors(2, [(1.0, 5.0), (3.0, 2.0)])
    assert s.touches((1.0, 9.9))  # defines m_check[0]
    assert s.touches((2.0, 5.0))  # defines m_hat[1]
    assert not s.touches((2.0, 3.0))


def test_replace_from_recomputes():
    s = SocialSummary.of_vectors(1, [(1.0,), (9.0,)])
    s.replace_from([(4.0,), (6.0,)])
    assert s.m_check == [4.0]
    assert s.m_hat == [6.0]


def test_infinite_vectors_supported():
    s = SocialSummary.of_vectors(1, [(INF,), (2.0,)])
    assert s.m_check == [2.0]
    assert s.m_hat == [INF]


def test_equality():
    a = SocialSummary.of_vectors(1, [(1.0,), (2.0,)])
    b = SocialSummary.of_vectors(1, [(2.0,), (1.0,)])
    assert a == b


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=50), st.floats(min_value=0, max_value=50)),
        min_size=1,
        max_size=12,
    )
)
def test_property_summary_brackets_members(vectors):
    s = SocialSummary.of_vectors(2, vectors)
    for vec in vectors:
        for j in range(2):
            assert s.m_check[j] <= vec[j] <= s.m_hat[j]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(st.floats(min_value=0, max_value=50)), min_size=2, max_size=10),
)
def test_property_incremental_equals_batch(vectors):
    batch = SocialSummary.of_vectors(1, vectors)
    incremental = SocialSummary(1)
    for vec in vectors:
        incremental.widen(vec)
    assert incremental == batch
