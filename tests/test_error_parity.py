"""Error-path parity: every layer rejects a bad request the same way.

The engine's contract is ``ValueError`` with pinned wording for the
request-error families — invalid parameters (``k``/``alpha``/method),
unknown user id, unlocated query user.  This suite drives each family
through all four call paths:

1. ``engine.query`` (the paper's algorithms),
2. ``QueryService.query`` (the serving layer),
3. ``ShardedGeoSocialEngine.query`` (the scale-out layer),
4. the HTTP server (``POST /query``),

and asserts they agree: same exception type and message on the three
in-process paths, and the matching ``400`` + typed body (via
:func:`repro.server.errors.classify_exception`) on the wire.
"""

from __future__ import annotations

import pytest

from repro import GeoSocialEngine, QueryService, ShardedGeoSocialEngine
from repro.datasets.synthetic import build_dataset
from repro.server import ServerClient, ServerThread
from repro.server.errors import classify_exception


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("error-parity", n=120, avg_degree=5.0, coverage=0.7, seed=5)


@pytest.fixture(scope="module")
def engine(dataset) -> GeoSocialEngine:
    return GeoSocialEngine.from_dataset(dataset, num_landmarks=4, s=5, seed=1)


@pytest.fixture(scope="module")
def sharded(dataset):
    engine = ShardedGeoSocialEngine.from_dataset(dataset, n_shards=2, num_landmarks=4, s=5, seed=1)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def service(engine):
    with QueryService(engine, cache_size=0) as svc:
        yield svc


@pytest.fixture(scope="module")
def handle(service):
    with ServerThread(service, workers=2) as h:
        yield h


@pytest.fixture()
def client(handle):
    with ServerClient(handle.host, handle.port) as c:
        yield c


@pytest.fixture(scope="module")
def located(engine) -> int:
    return sorted(engine.locations.located_users())[0]


@pytest.fixture(scope="module")
def unlocated(engine) -> int:
    return next(u for u in range(engine.graph.n) if not engine.locations.get(u))


CASES = [
    # (case id, request params, expected wire type, message fragment)
    ("k_zero", dict(k=0), "invalid_argument", "k must be >= 1"),
    ("k_negative", dict(k=-3), "invalid_argument", "k must be >= 1"),
    ("alpha_high", dict(k=5, alpha=2.0), "invalid_argument", "alpha must be in [0, 1]"),
    ("alpha_low", dict(k=5, alpha=-0.5), "invalid_argument", "alpha must be in [0, 1]"),
    ("alpha_nan", dict(k=5, alpha=float("nan")), "invalid_argument",
     "alpha must be in [0, 1], got nan"),
    ("bad_method", dict(k=5, method="warp"), "invalid_argument", "unknown method 'warp'"),
    ("budget_high", dict(k=5, budget=1.5), "invalid_argument",
     "budget must be in [0, 1]"),
    ("budget_negative", dict(k=5, budget=-0.1), "invalid_argument",
     "budget must be in [0, 1]"),
    ("budget_nan", dict(k=5, budget=float("nan")), "invalid_argument",
     "budget must be in [0, 1], got nan"),
]


def _request_params(case_params: dict, user: int) -> dict:
    body = {"user": user}
    body.update(case_params)
    return body


@pytest.mark.parametrize("name,params,wire_type,fragment", CASES)
def test_parameter_errors_agree_across_layers(
    engine, sharded, service, client, located, name, params, wire_type, fragment
):
    messages = set()
    for path in (engine.query, service.query, sharded.query):
        with pytest.raises(ValueError) as excinfo:
            path(located, **params)
        messages.add(str(excinfo.value))
        assert fragment in str(excinfo.value)
    assert len(messages) == 1, f"in-process wordings diverge: {messages}"
    (message,) = messages
    status, _, body = client.request("POST", "/query", _request_params(params, located))
    assert status == 400
    assert body["error"]["type"] == wire_type
    assert body["error"]["message"] == message
    assert classify_exception(ValueError(message)) == (400, wire_type)


def test_unknown_user_parity(engine, sharded, service, client):
    ghost = engine.graph.n + 7
    messages = set()
    for path in (engine.query, service.query, sharded.query):
        with pytest.raises(ValueError) as excinfo:
            path(ghost, k=5)
        messages.add(str(excinfo.value))
    assert len(messages) == 1
    (message,) = messages
    assert "out of range" in message
    status, _, body = client.request("POST", "/query", {"user": ghost, "k": 5})
    assert (status, body["error"]["type"]) == (400, "unknown_user")
    assert body["error"]["message"] == message
    assert classify_exception(ValueError(message)) == (400, "unknown_user")


def test_unlocated_user_parity(engine, sharded, service, client, unlocated):
    messages = set()
    for path in (engine.query, service.query, sharded.query):
        with pytest.raises(ValueError) as excinfo:
            path(unlocated, k=5, alpha=0.3)
        messages.add(str(excinfo.value))
    assert len(messages) == 1
    (message,) = messages
    assert "no known location" in message
    status, _, body = client.request(
        "POST", "/query", {"user": unlocated, "k": 5, "alpha": 0.3}
    )
    assert (status, body["error"]["type"]) == (400, "unlocated_user")
    assert body["error"]["message"] == message
    assert classify_exception(ValueError(message)) == (400, "unlocated_user")


def test_unlocated_user_is_fine_social_only(engine, service, client, unlocated):
    """``alpha == 1`` never consults the query user's location — all
    layers must *accept* the query, symmetrically with the rejection."""
    direct = engine.query(unlocated, k=5, alpha=1.0)
    via_service = service.query(unlocated, k=5, alpha=1.0)
    served = client.query(unlocated, k=5, alpha=1.0)
    assert served["result"]["users"] == direct.users == via_service.result.users


def test_batch_member_errors_do_not_poison_batch_mates(client, located, unlocated):
    """A bad request coalesced or batched with good ones fails alone:
    the good requests still return 200-equivalent entries.  (Batch
    endpoint semantics: the whole batch is rejected with the first
    member's error — per-member isolation applies to *coalesced
    singles*, which ride separate HTTP requests.)"""
    status, _, body = client.request(
        "POST",
        "/query/batch",
        {"requests": [{"user": located}, {"user": unlocated}], "k": 5, "alpha": 0.3},
    )
    assert status == 400
    assert body["error"]["type"] == "unlocated_user"
    # the same pair as individual requests: one succeeds, one fails
    ok = client.query(located, k=5, alpha=0.3)
    assert ok["result"]["query_user"] == located
    status, _, body = client.request(
        "POST", "/query", {"user": unlocated, "k": 5, "alpha": 0.3}
    )
    assert (status, body["error"]["type"]) == (400, "unlocated_user")


def test_server_never_hides_message_detail(client, located):
    """The wire message is the library message verbatim — operators
    debugging a 400 see exactly what an in-process caller would."""
    status, _, body = client.request("POST", "/query", {"user": located, "k": "five"})
    assert status == 400
    assert body["error"]["type"] == "invalid_argument"
    assert "'five'" in body["error"]["message"]


def test_non_numeric_alpha_parity(engine, sharded, service, client, located):
    """A non-numeric alpha is rejected with the *number* wording (not a
    TypeError traceback) identically on every in-process path, and the
    wire model uses the same message for a string alpha in JSON."""
    messages = set()
    for path in (engine.query, service.query, sharded.query):
        with pytest.raises(ValueError) as excinfo:
            path(located, k=5, alpha="lots")
        messages.add(str(excinfo.value))
    assert messages == {"alpha must be a number, got 'lots'"}
    status, _, body = client.request(
        "POST", "/query", {"user": located, "k": 5, "alpha": "lots"}
    )
    assert (status, body["error"]["type"]) == (400, "invalid_argument")
    assert body["error"]["message"] == "alpha must be a number, got 'lots'"


# -- CLI parity (satellite: `repro query` maps malformed k/alpha/budget
# -- to the engine's wording, exit code 1, no stack trace) -------------

CLI_CASES = [
    # (case id, extra argv, the engine's pinned message)
    ("k_word", ["-k", "five"], "k must be an integer, got 'five'"),
    ("k_zero", ["-k", "0"], "k must be >= 1, got 0"),
    ("alpha_word", ["--alpha", "lots"], "alpha must be a number, got 'lots'"),
    ("alpha_nan", ["--alpha", "nan"], "alpha must be in [0, 1], got nan"),
    ("alpha_high", ["--alpha", "2.5"], "alpha must be in [0, 1], got 2.5"),
    ("budget_word", ["--budget", "much"], "budget must be a number, got 'much'"),
    ("budget_high", ["--budget", "1.5"], "budget must be in [0, 1], got 1.5"),
]


@pytest.fixture(scope="module")
def engine_dir(engine, tmp_path_factory) -> str:
    return str(engine.save(tmp_path_factory.mktemp("parity") / "engine.store"))


@pytest.fixture(scope="module")
def cli_runner():
    pytest.importorskip("click", reason="the CLI is an optional extra")
    from click.testing import CliRunner

    return CliRunner()


@pytest.mark.parametrize("name,argv,message", CLI_CASES)
def test_cli_malformed_parameters_match_engine_wording(
    cli_runner, engine_dir, handle, located, name, argv, message
):
    """`repro query` rejects malformed k/alpha/budget with exactly the
    engine's message — locally and through --server — as a clean
    exit-1 error, never a click usage error or a traceback."""
    from repro.cli.commands import cli

    address = f"{handle.host}:{handle.port}"
    for target in (["--engine", engine_dir], ["--server", address]):
        result = cli_runner.invoke(cli, ["query", str(located), *target, *argv])
        assert result.exit_code == 1, result.output
        assert message in result.output
        assert "Traceback" not in result.output
        assert "Usage:" not in result.output
