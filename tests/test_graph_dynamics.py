"""Tests for incremental landmark-table maintenance under edge updates.

Every scenario is validated against the oracle: rebuild the landmark
index from scratch on the updated graph and compare full tables.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dynamics import DynamicLandmarkTables
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from tests.conftest import random_graph

INF = math.inf


def assert_tables_match(dynamic: DynamicLandmarkTables) -> None:
    current = dynamic.snapshot()
    fresh = LandmarkIndex(current, dynamic.landmarks.landmarks)
    for row_got, row_want in zip(dynamic.landmarks.dist, fresh.dist):
        for v, (a, b) in enumerate(zip(row_got, row_want)):
            assert math.isclose(a, b, abs_tol=1e-9) or (a == b == INF), (
                f"vertex {v}: incremental {a} vs recomputed {b}"
            )


@pytest.fixture()
def dynamic():
    g = random_graph(40, 4.0, seed=81)
    lm = LandmarkIndex.build(g, m=3, seed=8)
    return DynamicLandmarkTables(g, lm)


def test_weight_decrease(dynamic):
    u, v, w = next(iter(dynamic.snapshot().edges()))
    dynamic.update_edge(u, v, w / 10)
    assert_tables_match(dynamic)


def test_weight_increase(dynamic):
    u, v, w = next(iter(dynamic.snapshot().edges()))
    dynamic.update_edge(u, v, w * 10)
    assert_tables_match(dynamic)


def test_edge_insertion(dynamic):
    g = dynamic.snapshot()
    pair = next(
        (u, v) for u in range(g.n) for v in range(u + 1, g.n) if not g.has_edge(u, v)
    )
    dynamic.update_edge(pair[0], pair[1], 0.01)
    assert_tables_match(dynamic)


def test_edge_deletion(dynamic):
    u, v, _ = next(iter(dynamic.snapshot().edges()))
    dynamic.update_edge(u, v, None)
    assert_tables_match(dynamic)


def test_deleting_bridge_disconnects(dynamic_graph=None):
    g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
    lm = LandmarkIndex(g, [0])
    dyn = DynamicLandmarkTables(g, lm)
    dyn.update_edge(1, 2, None)
    assert dyn.landmarks.dist[0][2] == INF
    assert dyn.landmarks.dist[0][3] == INF
    assert dyn.landmarks.dist[0][1] == 1.0


def test_reinsertion_restores(dynamic):
    u, v, w = next(iter(dynamic.snapshot().edges()))
    before = [list(row) for row in dynamic.landmarks.dist]
    dynamic.update_edge(u, v, None)
    dynamic.update_edge(u, v, w)
    for row_got, row_want in zip(dynamic.landmarks.dist, before):
        for a, b in zip(row_got, row_want):
            assert math.isclose(a, b, abs_tol=1e-9) or (a == b == INF)


def test_noop_same_weight(dynamic):
    u, v, w = next(iter(dynamic.snapshot().edges()))
    before = [list(row) for row in dynamic.landmarks.dist]
    dynamic.update_edge(u, v, w)
    assert [list(r) for r in dynamic.landmarks.dist] == before


def test_invalid_updates(dynamic):
    with pytest.raises(ValueError):
        dynamic.update_edge(0, 0, 1.0)
    with pytest.raises(ValueError):
        dynamic.update_edge(0, 1, -1.0)
    g = dynamic.snapshot()
    pair = next(
        (u, v) for u in range(g.n) for v in range(u + 1, g.n) if not g.has_edge(u, v)
    )
    with pytest.raises(KeyError):
        dynamic.update_edge(pair[0], pair[1], None)


def test_directed_rejected():
    g = SocialGraph.from_edges(3, [(0, 1, 1.0)], directed=True)
    lm = LandmarkIndex(g, [0])
    with pytest.raises(NotImplementedError):
        DynamicLandmarkTables(g, lm)


def test_update_counter(dynamic):
    u, v, w = next(iter(dynamic.snapshot().edges()))
    dynamic.update_edge(u, v, w / 2)
    dynamic.update_edge(u, v, w)
    assert dynamic.updates_applied == 2


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_random_update_sequences(seed):
    rng = random.Random(seed)
    n = rng.randint(6, 25)
    g = random_graph(n, 3.0, seed=seed % 444)
    lm = LandmarkIndex.build(g, m=2, seed=seed % 9)
    dyn = DynamicLandmarkTables(g, lm)
    for _ in range(5):
        action = rng.random()
        edges = list(dyn.snapshot().edges())
        if action < 0.4 and edges:
            u, v, w = rng.choice(edges)
            dyn.update_edge(u, v, w * rng.uniform(0.1, 5.0))
        elif action < 0.7 and edges:
            u, v, _ = rng.choice(edges)
            dyn.update_edge(u, v, None)
        else:
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v and not dyn.snapshot().has_edge(u, v):
                dyn.update_edge(u, v, rng.uniform(0.05, 2.0))
    assert_tables_match(dyn)
