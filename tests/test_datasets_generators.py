"""Tests for the social-graph generators and edge weighting."""

import pytest

from repro.datasets.generators import (
    barabasi_albert_edges,
    erdos_renyi_edges,
    watts_strogatz_edges,
)
from repro.datasets.weights import degree_product_weights, uniform_weights
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import hop_counts


def degrees(n, edges):
    deg = [0] * n
    for u, v in edges:
        deg[u] += 1
        deg[v] += 1
    return deg


class TestBarabasiAlbert:
    def test_average_degree_close_to_2m(self):
        edges = barabasi_albert_edges(2000, 5, seed=1)
        avg = 2 * len(edges) / 2000
        assert 8.0 <= avg <= 11.0

    def test_heavy_tail(self):
        """Preferential attachment must create hubs: the max degree far
        exceeds the average."""
        edges = barabasi_albert_edges(3000, 4, seed=2)
        deg = degrees(3000, edges)
        avg = sum(deg) / len(deg)
        assert max(deg) > 5 * avg

    def test_connected(self):
        edges = barabasi_albert_edges(500, 3, seed=3)
        g = SocialGraph.from_edges(500, [(u, v, 1.0) for u, v in edges])
        assert len(hop_counts(g, 0)) == 500

    def test_deterministic(self):
        assert barabasi_albert_edges(100, 3, seed=7) == barabasi_albert_edges(100, 3, seed=7)

    def test_no_duplicates_or_loops(self):
        edges = barabasi_albert_edges(300, 4, seed=4)
        assert len(edges) == len(set(edges))
        assert all(u < v for u, v in edges)

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert_edges(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert_edges(3, 5)


class TestWattsStrogatz:
    def test_degree_preserved_in_lattice(self):
        edges = watts_strogatz_edges(100, 6, beta=0.0, seed=1)
        deg = degrees(100, edges)
        assert all(d == 6 for d in deg)

    def test_rewiring_changes_edges(self):
        lattice = watts_strogatz_edges(200, 4, beta=0.0, seed=2)
        rewired = watts_strogatz_edges(200, 4, beta=0.5, seed=2)
        assert set(lattice) != set(rewired)

    def test_validation(self):
        with pytest.raises(ValueError):
            watts_strogatz_edges(10, 3, 0.1)  # odd k
        with pytest.raises(ValueError):
            watts_strogatz_edges(4, 6, 0.1)  # k >= n
        with pytest.raises(ValueError):
            watts_strogatz_edges(10, 2, 1.5)  # bad beta


class TestErdosRenyi:
    def test_edge_count(self):
        edges = erdos_renyi_edges(100, 6.0, seed=1)
        assert len(edges) == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_edges(10, 0.0)
        with pytest.raises(ValueError):
            erdos_renyi_edges(4, 10.0)


class TestWeights:
    def test_degree_product_formula(self):
        # star: center 0 with 3 leaves; max degree 3.
        edges = [(0, 1), (0, 2), (0, 3)]
        weighted = degree_product_weights(4, edges)
        for u, v, w in weighted:
            assert w == pytest.approx((3 * 1) / 9)

    def test_weights_in_unit_interval(self):
        edges = barabasi_albert_edges(300, 4, seed=5)
        weighted = degree_product_weights(300, edges)
        assert all(0 < w <= 1 for _, _, w in weighted)

    def test_hub_edges_weaker(self):
        """Edges between hubs must have larger weight (looser ties) than
        edges between low-degree vertices."""
        edges = barabasi_albert_edges(500, 3, seed=6)
        deg = degrees(500, edges)
        weighted = degree_product_weights(500, edges)
        by_product = sorted(weighted, key=lambda e: deg[e[0]] * deg[e[1]])
        assert by_product[0][2] < by_product[-1][2]

    def test_empty_graph(self):
        assert degree_product_weights(5, []) == []

    def test_uniform_weights(self):
        assert uniform_weights([(0, 1)], 2.5) == [(0, 1, 2.5)]
        with pytest.raises(ValueError):
            uniform_weights([(0, 1)], 0.0)
