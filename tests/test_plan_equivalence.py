"""Planner differential harness: ``method="auto"`` ≡ ``bruteforce``.

The adaptive planner's correctness promise is absolute: whatever
concrete method it resolves per query, the answer is **bit-identical**
— ids, scores, *and* tie-breaks — to the brute-force reference,
because every default candidate is a forward-deterministic family
(schedule-independent social distances, shared Euclidean primitive,
shared smaller-id tie-break).

Pinned here across the whole stack:

- both backends (``python`` and ``numpy`` kernels),
- shard counts {1, 4} (single engine and scatter-gather coordinator),
- interleaved location updates (moves, forgets, boundary crossings),
- the cached service path (resolved-method cache keys), and
- ``rebuild_engine`` (the planner instance and its learned costs
  survive the swap; results stay exact against the new engine).

Runs under the same fixed, derandomized Hypothesis profile as the
other equivalence suites, applied per test.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import AUTO, GeoSocialEngine
from repro.plan import AdaptivePlanner
from repro.service import QueryRequest, QueryService
from repro.shard import ShardedGeoSocialEngine
from tests.conftest import random_instance

settings.register_profile(
    "plan-ci",
    max_examples=12,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
PLAN_CI = settings.get_profile("plan-ci")

BACKENDS = ("python", "numpy")
SHARD_COUNTS = (1, 4)
ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)
STEPS = 8


def _backends():
    try:
        import numpy  # noqa: F401
    except ModuleNotFoundError:  # pragma: no cover - numpy-less env
        return ("python",)
    return BACKENDS


def build_engine(graph, locations, n_shards, backend):
    if n_shards == 1:
        return GeoSocialEngine(
            graph, locations, num_landmarks=3, s=4, seed=3, backend=backend
        )
    return ShardedGeoSocialEngine(
        graph,
        locations,
        n_shards=n_shards,
        num_landmarks=3,
        s=4,
        seed=3,
        max_workers=1,
        backend=backend,
    )


def assert_bit_identical(auto, brute, context):
    ids_a = [nb.user for nb in auto]
    ids_b = [nb.user for nb in brute]
    assert ids_a == ids_b, f"{context}: ranking differs: {ids_a} vs {ids_b}"
    assert [nb.score for nb in auto] == [nb.score for nb in brute], (
        f"{context} ({auto.method}): scores not bit-identical:\n"
        f"{[nb.score for nb in auto]}\n{[nb.score for nb in brute]}"
    )
    assert [nb.social for nb in auto] == [nb.social for nb in brute], context
    assert [nb.spatial for nb in auto] == [nb.spatial for nb in brute], context


def verify_queries(engine, users, rng, context):
    for user in users:
        k = rng.choice((1, 3, 8))
        alpha = rng.choice(ALPHAS)
        try:
            auto = engine.query(user, k, alpha, AUTO)
        except ValueError as err:
            # Unlocated query user: auto mirrors the engine's default
            # spatial-method contract (bruteforce, the reference scan,
            # deliberately tolerates unlocated query users instead).
            assert "no known location" in str(err)
            with pytest.raises(ValueError, match="no known location"):
                engine.query(user, k, alpha, "ais")
            continue
        brute = engine.query(user, k, alpha, "bruteforce")
        assert_bit_identical(auto, brute, f"{context} u={user} k={k} a={alpha}")


@pytest.mark.parametrize("backend", _backends())
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_auto_equals_bruteforce_under_interleaved_updates(backend, n_shards):
    @PLAN_CI
    @given(
        n=st.integers(min_value=24, max_value=70),
        seed=st.integers(min_value=0, max_value=2**16),
        coverage=st.sampled_from((0.6, 0.9, 1.0)),
    )
    def property_case(n, seed, coverage):
        graph, locations = random_instance(n, seed=seed, coverage=coverage)
        if locations.n_located == 0:
            locations.set(0, 0.5, 0.5)
        engine = build_engine(graph, locations, n_shards, backend)
        rng = random.Random(seed + n)
        users = [u for u in locations.located_users()][:3] or [0]
        verify_queries(engine, users, rng, f"initial b={backend} s={n_shards}")
        for step in range(STEPS):
            mover = rng.randrange(graph.n)
            if rng.random() < 0.2 and engine.locations.has_location(mover):
                engine.forget_location(mover)
            else:
                engine.move_user(mover, rng.random(), rng.random())
            verify_queries(
                engine, users, rng, f"step={step} b={backend} s={n_shards}"
            )

    property_case()


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_auto_equals_bruteforce_through_cached_service_and_rebuild(n_shards):
    """The service path: resolved-method cache keys, update-aware
    invalidation, then an edge update + ``rebuild_engine`` swap — auto
    responses stay bit-identical to fresh bruteforce at every point."""
    graph, locations = random_instance(90, seed=21, coverage=0.85)
    engine = build_engine(graph, locations, n_shards, "auto")
    service = QueryService(engine, cache_size=64)
    rng = random.Random(77)
    users = [u for u in locations.located_users()][:4]
    try:
        for round_no in range(3):
            for user in users:
                alpha = rng.choice(ALPHAS)
                response = service.query(
                    QueryRequest(user=user, k=5, alpha=alpha, method=AUTO)
                )
                brute = service.engine.query(user, 5, alpha, "bruteforce")
                assert_bit_identical(
                    response.result, brute, f"service r={round_no} u={user} a={alpha}"
                )
                # cached replays serve the same (still-exact) result
                again = service.query(
                    QueryRequest(user=user, k=5, alpha=alpha, method=AUTO)
                )
                assert_bit_identical(again.result, brute, "cached replay")
            service.move_user(users[round_no % len(users)], rng.random(), rng.random())
        planner = service.engine.planner
        service.update_edge(users[0], users[1], 0.25)
        new_engine = service.rebuild_engine()
        assert new_engine.planner is planner  # learned costs survive the swap
        for user in users:
            response = service.query(QueryRequest(user=user, k=5, alpha=0.5, method=AUTO))
            brute = new_engine.query(user, 5, 0.5, "bruteforce")
            assert_bit_identical(response.result, brute, f"post-rebuild u={user}")
    finally:
        service.close()


def test_auto_with_ais_candidates_keeps_rankings_exact():
    """Opting AIS into the candidate set trades bit-identical scores
    (1-ulp schedule noise) for speed — rankings must still be exact."""
    graph, locations = random_instance(80, seed=5, coverage=0.9)
    engine = GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=3)
    engine.planner = AdaptivePlanner(candidates=("ais",), seed=1)
    users = [u for u in locations.located_users()][:4]
    for user in users:
        auto = engine.query(user, 6, 0.5, AUTO)
        assert auto.method == "ais"
        brute = engine.query(user, 6, 0.5, "bruteforce")
        assert auto.users == brute.users
        for nb_a, nb_b in zip(auto, brute):
            assert abs(nb_a.score - nb_b.score) <= 1e-9
