"""Tests for Lemma 2 / Theorem 1 lower bounds, including infinity
(disconnection) handling."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import Normalization, RankingFunction
from repro.graph.landmarks import LandmarkIndex
from repro.graph.traversal import dijkstra_distances
from repro.index.bounds import minf, social_lower_bound, social_lower_bound_vertex
from repro.index.summaries import SocialSummary
from tests.conftest import random_graph

INF = math.inf


class TestSocialLowerBound:
    def test_paper_example(self):
        """Figure 4: single landmark, cell distances in [1, 4], query at
        distance 2 from the landmark... the paper's concrete instance:
        m_check=1, m_hat=4, query distance to landmark = 0 -> bound 1."""
        assert social_lower_bound([0.0], [1.0], [4.0]) == 1.0

    def test_query_above_m_hat(self):
        assert social_lower_bound([7.0], [1.0], [4.0]) == 3.0

    def test_query_inside_interval_is_zero(self):
        assert social_lower_bound([2.5], [1.0], [4.0]) == 0.0

    def test_tightest_over_landmarks(self):
        q = [0.0, 10.0]
        m_check = [2.0, 1.0]
        m_hat = [5.0, 3.0]
        # landmark 0: 2-0=2; landmark 1: 10-3=7
        assert social_lower_bound(q, m_check, m_hat) == 7.0

    def test_all_disconnected_from_landmark_uninformative(self):
        assert social_lower_bound([INF], [INF], [INF]) == 0.0

    def test_cell_disconnected_query_connected(self):
        assert social_lower_bound([3.0], [INF], [INF]) == INF

    def test_query_disconnected_cell_connected(self):
        assert social_lower_bound([INF], [1.0], [4.0]) == INF

    def test_mixed_cell_with_infinite_member(self):
        # m_hat = inf (some member unreachable from landmark), query
        # above m_check: no valid bound from the upper side.
        assert social_lower_bound([5.0], [1.0], [INF]) == 0.0
        # query below m_check still bounds.
        assert social_lower_bound([0.5], [1.0], [INF]) == 0.5

    def test_no_nan_ever(self):
        for q in (0.0, 1.0, INF):
            for lo in (0.0, 2.0, INF):
                for hi in (2.0, 5.0, INF):
                    if lo > hi:
                        continue
                    value = social_lower_bound([q], [lo], [hi])
                    assert value == value  # not NaN


class TestVertexBound:
    def test_matches_landmark_index(self):
        g = random_graph(40, 4.0, seed=91)
        lm = LandmarkIndex.build(g, m=3, seed=1)
        for u in range(0, 40, 5):
            qv = lm.vector(u)
            for v in range(40):
                assert social_lower_bound_vertex(qv, lm.vector(v)) == lm.lower_bound(u, v)

    def test_degenerate_summary_equals_vertex_bound(self):
        qv = (1.0, 5.0)
        vec = (3.0, 2.0)
        assert social_lower_bound_vertex(qv, vec) == social_lower_bound(qv, vec, vec)


class TestValidityAgainstTrueDistances:
    def test_cell_bound_below_every_member(self):
        g = random_graph(60, 4.0, seed=92)
        lm = LandmarkIndex.build(g, m=4, seed=2)
        rng = random.Random(3)
        query = 0
        truth = dijkstra_distances(g, query)
        qv = lm.vector(query)
        for _ in range(30):
            members = rng.sample(range(g.n), rng.randint(1, 8))
            summary = SocialSummary.of_vectors(lm.m, (lm.vector(v) for v in members))
            bound = social_lower_bound(qv, summary.m_check, summary.m_hat)
            for v in members:
                assert bound <= truth.get(v, INF) + 1e-9


class TestMinf:
    def test_combines_with_alpha_weights(self):
        rank = RankingFunction(0.3, Normalization(p_max=10.0, d_max=2.0))
        value = minf(rank, 5.0, 1.0)
        assert math.isclose(value, 0.3 * 0.5 + 0.7 * 0.5)

    def test_pure_social(self):
        rank = RankingFunction(1.0, Normalization(p_max=10.0, d_max=2.0))
        assert minf(rank, 5.0, INF) == 0.5  # spatial term weight 0

    def test_pure_spatial(self):
        rank = RankingFunction(0.0, Normalization(p_max=10.0, d_max=2.0))
        assert minf(rank, INF, 1.0) == 0.5


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=4),
    st.lists(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=4),
        min_size=1,
        max_size=6,
    ),
)
def test_property_group_bound_below_member_bounds(query_vec, member_vecs):
    """The group bound can never exceed any member's individual bound."""
    m = len(query_vec)
    member_vecs = [vec[:m] + [0.0] * (m - len(vec)) for vec in member_vecs]
    summary = SocialSummary.of_vectors(m, member_vecs)
    group = social_lower_bound(query_vec, summary.m_check, summary.m_hat)
    for vec in member_vecs:
        assert group <= social_lower_bound_vertex(query_vec, vec) + 1e-9
