"""Documentation that executes: README, ARCHITECTURE, and docstrings.

Three promises are pinned here:

1. every ``>>>`` example in README.md and docs/ARCHITECTURE.md runs and
   produces exactly the shown output;
2. every module holding a public export passes its docstring doctests;
3. every class/function exported in ``repro.__all__`` carries a
   docstring *with a runnable usage example* (the ``>>>`` form doctest
   picks up), so the first thing a user reads is something they can
   paste.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "ARCHITECTURE.md",
]

#: every module that defines a ``repro.__all__`` export or public
#: service/bench API, i.e. everywhere docstring examples live
DOCUMENTED_MODULES = [
    "repro",
    "repro.backend",
    "repro.backend.base",
    "repro.backend.numpy_backend",
    "repro.core.engine",
    "repro.core.searcher",
    "repro.core.sfa",
    "repro.core.spa",
    "repro.core.tsa",
    "repro.core.ais",
    "repro.core.precompute",
    "repro.core.bruteforce",
    "repro.core.ranking",
    "repro.core.result",
    "repro.core.stats",
    "repro.graph.socialgraph",
    "repro.graph.dynamics",
    "repro.spatial.point",
    "repro.index.aggregate",
    "repro.datasets.synthetic",
    "repro.plan.rules",
    "repro.plan.features",
    "repro.plan.cost",
    "repro.plan.planner",
    "repro.service.model",
    "repro.service.cache",
    "repro.service.service",
    "repro.shard.engine",
    "repro.shard.partitioner",
    "repro.shard.bounds",
    "repro.shard.parallel",
    "repro.sketch.index",
    "repro.sketch.searcher",
    "repro.store",
    "repro.store.format",
    "repro.store.snapshot",
    "repro.store.manager",
    "repro.stream",
    "repro.stream.conditions",
    "repro.stream.registry",
    "repro.stream.subscription",
    "repro.server.app",
    "repro.server.client",
    "repro.server.errors",
    "repro.cli.format",
    "repro.topk.merge",
    "repro.utils.concurrency",
    "repro.bench.server_load",
    "repro.bench.service_workload",
    "repro.bench.stream_workload",
]


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_markdown_examples_execute(path):
    assert path.exists(), f"{path.name} is missing"
    result = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert result.attempted > 0, f"{path.name} has no runnable examples"
    assert result.failed == 0, f"{result.failed} doctest failures in {path.name}"


@pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
def test_module_docstring_examples_execute(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(
        module,
        verbose=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"


def test_every_public_export_has_a_runnable_example():
    missing_doc = []
    missing_example = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # plain values: __version__, METHODS
        doc = inspect.getdoc(obj) or ""
        if not doc.strip():
            missing_doc.append(name)
        elif ">>>" not in doc:
            missing_example.append(name)
    assert not missing_doc, f"exports without docstrings: {missing_doc}"
    assert not missing_example, (
        f"exports whose docstrings lack a runnable ('>>>') example: {missing_example}"
    )


def test_readme_documents_every_method():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    from repro.core.engine import METHODS

    for method in METHODS:
        assert f"`{method}`" in readme, f"method {method!r} missing from README"


def test_citation_is_consistent():
    """The stale 'TKDE 27(3), 2015' vs 'ICDE 2016' mismatch must not
    come back: the package docstring and PAPER.md agree on the venue."""
    paper = (REPO_ROOT / "PAPER.md").read_text(encoding="utf-8").lower()
    package_doc = (repro.__doc__ or "").lower()
    assert "icde" in paper
    assert "icde 2016" in package_doc
    assert "tkde" not in package_doc
