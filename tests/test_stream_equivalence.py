"""Stream-maintenance differential harness: maintained ≡ fresh.

The continuous-subscription subsystem's core promise: after *every*
update, every maintained :class:`~repro.core.result.SSRQResult` equals
what a fresh ``engine.query`` would return at that instant — ids,
scores, and tie-breaks.  For the repairable (forward-Dijkstra) methods
the scores must match *bit for bit*: repairs reuse stored social
distances and re-derive spatial ones with the engine's own primitives.
The AIS family recomputes rather than repairs, and its fresh scores
are legitimately schedule-dependent up to float association (the 1-ulp
caveat the sharded suite documents), so AIS legs assert identical
rankings with the repo's 1e-9 score tolerance.

Runs under the same fixed, derandomized Hypothesis profile as the
cross-shard and backend equivalence suites, applied per test, on both
backends (CI runs the file under ``REPRO_BACKEND=python`` and
``=numpy``) and shard counts {1, 4}.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import GeoSocialEngine
from repro.service import QueryRequest, QueryService
from repro.shard import ShardedGeoSocialEngine
from repro.stream import REPAIRABLE_METHODS, SubscriptionRegistry
from tests.conftest import random_instance

settings.register_profile(
    "stream-ci",
    max_examples=16,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
STREAM_CI = settings.get_profile("stream-ci")

#: repairable forward methods (bitwise maintained scores) + one AIS leg
METHODS = ("spa", "tsa", "sfa", "bruteforce", "ais")
SHARD_COUNTS = (1, 4)
#: update/verify interleaving steps per example; with 16 derandomized
#: examples per property (x2 properties, x2 CI backend legs) the suite
#: verifies maintained == fresh at well over 200 randomized
#: interleaving points
STEPS = 10


def build_engine(graph, locations, n_shards):
    if n_shards == 1:
        return GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=3)
    return ShardedGeoSocialEngine(
        graph, locations, n_shards=n_shards, num_landmarks=3, s=4, seed=3, max_workers=1
    )


def assert_maintained_equals_fresh(sub, maintained, fresh, context):
    ids_m = [nb.user for nb in maintained]
    ids_f = [nb.user for nb in fresh]
    assert ids_m == ids_f, f"{context}: ranking differs: {ids_m} vs {ids_f}"
    if sub.method in REPAIRABLE_METHODS:
        scores_m = [nb.score for nb in maintained]
        scores_f = [nb.score for nb in fresh]
        assert scores_m == scores_f, (
            f"{context}: maintained scores not bit-identical:\n{scores_m}\n{scores_f}"
        )
        assert [nb.social for nb in maintained] == [nb.social for nb in fresh], context
        assert [nb.spatial for nb in maintained] == [nb.spatial for nb in fresh], context
    else:
        for nb_m, nb_f in zip(maintained, fresh):
            assert abs(nb_m.score - nb_f.score) <= 1e-9, (
                f"{context}: score for {nb_m.user}: {nb_m.score!r} vs {nb_f.score!r}"
            )


def check_all(registry, engine, subs, context):
    for sub in subs:
        try:
            maintained = registry.result(sub)
        except ValueError:
            # Suspended: the fresh query must fail identically (the
            # query user has no known location at this alpha).
            with pytest.raises(ValueError, match="no known location"):
                engine.query(sub.user, sub.k, sub.alpha, sub.method, t=sub.t)
            continue
        fresh = engine.query(sub.user, sub.k, sub.alpha, sub.method, t=sub.t)
        assert_maintained_equals_fresh(sub, maintained, fresh, context)


def apply_random_update(rng, service, engine, subs, hot_users, registry=None):
    """One randomized update: a move (often near a subscribed query,
    sometimes far away, sometimes of a member/query user), a forget,
    an edge update, or a mid-stream subscription registration."""
    roll = rng.random()
    if registry is not None and roll < 0.06:
        u = rng.choice(hot_users) if rng.random() < 0.5 else rng.randrange(engine.graph.n)
        sub = registry.subscribe(u, k=3, alpha=0.5, method=rng.choice(METHODS))
        subs.append(sub)
        hot_users.append(u)
        return ("subscribe", u)
    if registry is not None and roll < 0.12:
        u, v = rng.randrange(engine.graph.n), rng.randrange(engine.graph.n)
        if u != v:
            # Companion-table model: served topology unchanged, so this
            # must classify as a no-op for every subscription.
            service.update_edge(u, v, rng.uniform(0.05, 1.0))
            return ("edge", (u, v))
        roll = 0.5  # fall through to a move
    if roll < 0.2 and engine.locations.n_located > 1:
        candidates = [u for u in hot_users if engine.locations.has_location(u)]
        victim = rng.choice(candidates) if candidates and rng.random() < 0.5 else None
        if victim is None:
            located = list(engine.locations.located_users())
            victim = rng.choice(located)
        service.forget_location(victim)
        return ("forget", victim)
    if roll < 0.35:
        mover = rng.choice(hot_users)  # query users / members: repairs + recomputes
    else:
        mover = rng.randrange(engine.graph.n)
    if rng.random() < 0.6:
        x, y = rng.random(), rng.random()
    else:
        x, y = rng.uniform(-0.4, 1.4), rng.uniform(-0.4, 1.4)  # out-of-box
    service.move_user(mover, x, y)
    return ("move", mover)


@STREAM_CI
@given(
    n=st.integers(min_value=30, max_value=80),
    seed=st.integers(min_value=0, max_value=2**16),
    n_shards=st.sampled_from(SHARD_COUNTS),
    alpha=st.sampled_from((0.0, 0.3, 0.5, 1.0)),
    k=st.sampled_from((1, 4, 8)),
)
def test_maintained_results_equal_fresh_after_every_step(n, seed, n_shards, alpha, k):
    """Read-after-every-update: the maintained result must equal a
    fresh query at every instant, across methods, α (endpoints
    included), k, and shard counts."""
    graph, locations = random_instance(n, seed=seed, coverage=0.8)
    if locations.n_located == 0:
        locations.set(0, 0.5, 0.5)
    engine = build_engine(graph, locations, n_shards)
    service = QueryService(engine, cache_size=64)
    registry = SubscriptionRegistry(service)
    rng = random.Random(seed * 31 + n)
    located = list(engine.locations.located_users())
    query_users = [rng.choice(located) for _ in range(4)]
    subs = [
        registry.subscribe(u, k=k, alpha=alpha, method=m)
        for u, m in zip(query_users, rng.sample(METHODS, 4))
    ]
    hot = list(dict.fromkeys(query_users))
    for sub in subs:
        if sub.result is not None:
            hot.extend(sub.result.users[:2])
    check_all(registry, engine, subs, "initial")
    for step in range(STEPS):
        op = apply_random_update(rng, service, engine, subs, hot, registry=registry)
        check_all(registry, engine, subs, f"step {step} after {op}")
    registry.close()
    service.close()


@STREAM_CI
@given(
    n=st.integers(min_value=30, max_value=70),
    seed=st.integers(min_value=0, max_value=2**16),
    n_shards=st.sampled_from(SHARD_COUNTS),
)
def test_batched_bursts_then_read(n, seed, n_shards):
    """Bursts of updates accumulate as pending deltas and are applied
    in one pass per subscription at read time — the batched path must
    land on exactly the fresh answer too."""
    graph, locations = random_instance(n, seed=seed, coverage=0.85)
    if locations.n_located == 0:
        locations.set(0, 0.5, 0.5)
    engine = build_engine(graph, locations, n_shards)
    service = QueryService(engine, cache_size=0)
    registry = SubscriptionRegistry(service)
    rng = random.Random(seed + 7)
    located = list(engine.locations.located_users())
    subs = [
        registry.subscribe(rng.choice(located), k=5, alpha=a, method=m)
        for a, m in ((0.3, "spa"), (0.5, "tsa"), (0.7, "sfa"), (0.3, "bruteforce"))
    ]
    hot = [s.user for s in subs]
    for s in subs:
        if s.result is not None:
            hot.extend(s.result.users[:2])
    for burst in range(4):
        for _ in range(5):  # five updates, zero reads: deltas accumulate
            apply_random_update(rng, service, engine, subs, hot)
        registry.flush()
        check_all(registry, engine, subs, f"burst {burst}")
    # The registry actually maintained (not recomputed-on-every-read):
    stats = registry.stats
    assert stats.location_updates >= 15
    assert stats.noops + stats.repair_marks > 0
    registry.close()
    service.close()


def test_edge_updates_and_rebuild_keep_subscriptions_current():
    """update_edge leaves served results untouched (companion-table
    model) and rebuild_engine swaps the engine — the registry must
    detect the swap and recompute against the new topology."""
    graph, locations = random_instance(60, seed=41, coverage=0.9)
    engine = GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=3)
    service = QueryService(engine, cache_size=32)
    registry = SubscriptionRegistry(service)
    located = list(engine.locations.located_users())
    subs = [
        registry.subscribe(located[0], k=5, alpha=0.5, method="tsa"),
        registry.subscribe(located[1], k=5, alpha=0.3, method="spa"),
    ]
    before = {s: registry.result(s).users for s in subs}
    # Edge updates accumulate in the companion tables: the served graph
    # is unchanged, so maintained == fresh == the previous answer.
    service.update_edge(located[0], located[2], 0.01)
    service.update_edge(located[1], located[3], 0.02)
    assert registry.stats.edge_updates == 2
    for s in subs:
        assert registry.result(s).users == before[s]
        assert registry.result(s).users == engine.query(s.user, 5, s.alpha, s.method).users
    # Folding them in swaps the engine: results now reflect the new
    # topology, computed against the new engine.
    new_engine = service.rebuild_engine()
    for s in subs:
        maintained = registry.result(s)
        fresh = new_engine.query(s.user, 5, s.alpha, s.method)
        assert [(nb.user, nb.score) for nb in maintained] == [
            (nb.user, nb.score) for nb in fresh
        ]
    assert registry.stats.engine_swaps == 1
    registry.close()
    service.close()
    new_engine.close()


def test_suspension_mirrors_fresh_query_errors():
    """Forgetting the query user's location suspends the subscription
    (reads raise like a fresh query); a later move resumes it."""
    graph, locations = random_instance(50, seed=13, coverage=1.0)
    engine = GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=3)
    service = QueryService(engine, cache_size=0)
    registry = SubscriptionRegistry(service)
    q = next(iter(engine.locations.located_users()))
    sub = registry.subscribe(q, k=5, alpha=0.4, method="spa")
    assert sub.active
    service.forget_location(q)
    with pytest.raises(ValueError, match="no known location"):
        registry.result(sub)
    assert not sub.active and registry.stats.suspended == 1
    with pytest.raises(ValueError, match="no known location"):
        engine.query(q, 5, 0.4, "spa")
    # Unrelated churn while suspended stays a no-op ...
    other = [u for u in engine.locations.located_users() if u != q][0]
    service.move_user(other, 0.9, 0.9)
    with pytest.raises(ValueError):
        registry.result(sub)
    # ... and the query user re-appearing resumes maintenance.
    service.move_user(q, 0.4, 0.6)
    result = registry.result(sub)
    assert sub.active and registry.stats.suspended == 0
    fresh = engine.query(q, 5, 0.4, "spa")
    assert [(nb.user, nb.score) for nb in result] == [(nb.user, nb.score) for nb in fresh]
    registry.close()
    service.close()


def test_pure_social_subscriptions_ignore_location_churn():
    """α = 1 routes to SFA and never touches locations: every location
    update must classify NO-OP and the initial result must survive
    unchanged (and stay equal to fresh)."""
    graph, locations = random_instance(50, seed=29, coverage=0.8)
    engine = GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=3)
    service = QueryService(engine, cache_size=0)
    registry = SubscriptionRegistry(service)
    sub = registry.subscribe(0, k=6, alpha=1.0, method="ais")  # routes to sfa
    assert sub.method == "sfa"
    initial = registry.result(sub)
    rng = random.Random(2)
    for _ in range(20):
        service.move_user(rng.randrange(graph.n), rng.random(), rng.random())
    assert registry.result(sub) is initial  # not even rebuilt
    assert registry.stats.recompute_marks == 0 and registry.stats.repair_marks == 0
    fresh = engine.query(0, 6, 1.0, "ais")
    assert [(nb.user, nb.score) for nb in initial] == [(nb.user, nb.score) for nb in fresh]
    registry.close()
    service.close()


def test_pending_limit_escalates_to_recompute():
    """More buffered deltas than ``pending_limit`` escalate to one
    recompute (a repair pass would approach recompute cost anyway)."""
    graph, locations = random_instance(60, seed=17, coverage=1.0)
    engine = GeoSocialEngine(graph, locations, num_landmarks=3, s=4, seed=3)
    service = QueryService(engine, cache_size=0)
    registry = SubscriptionRegistry(service, pending_limit=3)
    q = next(iter(engine.locations.located_users()))
    sub = registry.subscribe(q, k=4, alpha=0.3, method="spa")
    qx, qy = engine.locations.get(q)
    movers = [u for u in range(graph.n) if u != q][:6]
    for i, m in enumerate(movers):  # all land next to q: all repair-marked
        service.move_user(m, min(1.0, qx + 1e-4 * (i + 1)), qy)
    assert sub.recompute_pending, "pending cap must escalate"
    maintained = registry.result(sub)
    fresh = engine.query(q, 4, 0.3, "spa")
    assert [(nb.user, nb.score) for nb in maintained] == [
        (nb.user, nb.score) for nb in fresh
    ]
    registry.close()
    service.close()


def test_subscribe_validates_before_registering():
    """A bad request must not leave a half-registered subscription."""
    graph, locations = random_instance(20, seed=3, coverage=1.0)
    engine = GeoSocialEngine(graph, locations, num_landmarks=2, s=3, seed=3)
    service = QueryService(engine, cache_size=0)
    registry = SubscriptionRegistry(service)
    with pytest.raises(ValueError):
        registry.subscribe(graph.n + 5, k=4)  # out of range
    with pytest.raises(ValueError):
        registry.subscribe(0, k=0)  # invalid k
    with pytest.raises(ValueError):
        registry.subscribe(0, k=4, alpha=1.5)  # invalid alpha
    with pytest.raises(ValueError, match="unknown method"):
        registry.subscribe(0, k=4, method="bogus")
    assert len(registry) == 0 and registry.stats.subscribed == 0
    # A poisoned half-registration would make every later flush raise.
    assert registry.flush() == {"repaired": 0, "recomputed": 0}
    registry.close()
    service.close()


def test_sharded_delta_routing_skips_remote_groups_exactly():
    """On a sharded engine, an update far outside a group's shard
    envelope is routed away from its subscriptions in O(1) — without
    ever changing what reads return."""
    graph, locations = random_instance(120, seed=77, coverage=1.0)
    engine = ShardedGeoSocialEngine(
        graph, locations, n_shards=4, num_landmarks=3, s=4, seed=3, max_workers=1
    )
    service = QueryService(engine, cache_size=0)
    registry = SubscriptionRegistry(service)
    located = list(engine.locations.located_users())
    subs = [registry.subscribe(u, k=4, alpha=0.5, method="tsa") for u in located[:6]]
    registry.flush()
    rng = random.Random(4)
    for _ in range(40):  # far-away churn: outside every shard envelope
        service.move_user(rng.randrange(graph.n), rng.uniform(30.0, 40.0), rng.uniform(30.0, 40.0))
    assert registry.stats.group_skips > 0, "router never skipped a group"
    for sub in subs:
        maintained = registry.result(sub)
        fresh = engine.query(sub.user, 4, 0.5, "tsa")
        assert [(nb.user, nb.score) for nb in maintained] == [
            (nb.user, nb.score) for nb in fresh
        ]
    registry.close()
    service.close()
