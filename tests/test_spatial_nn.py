"""Tests for incremental nearest-neighbour search over the grid."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.grid import UniformGrid
from repro.spatial.nn import IncrementalNearestNeighbors
from repro.spatial.point import LocationTable


def build(points, resolution=6):
    table = LocationTable.empty(len(points))
    for user, (x, y) in enumerate(points):
        table.set(user, x, y)
    return table, UniformGrid.build(table, resolution)


def brute_force_order(table, qx, qy, exclude=None):
    entries = [
        (table.distance_to(u, qx, qy), u)
        for u in table.located_users()
        if u != exclude
    ]
    return sorted(entries)


def test_single_point():
    table, grid = build([(0.5, 0.5)])
    nn = IncrementalNearestNeighbors(grid, table, 0.0, 0.0)
    assert nn.next() == (0, table.distance_to(0, 0.0, 0.0))
    assert nn.next() is None


def test_exclude_query_user():
    table, grid = build([(0.5, 0.5), (0.6, 0.6)])
    nn = IncrementalNearestNeighbors(grid, table, 0.5, 0.5, exclude=0)
    user, _ = nn.next()
    assert user == 1
    assert nn.next() is None


def test_full_enumeration_matches_brute_force():
    rng = random.Random(11)
    points = [(rng.random(), rng.random()) for _ in range(250)]
    table, grid = build(points, resolution=9)
    qx, qy = 0.42, 0.58
    expected = brute_force_order(table, qx, qy)
    nn = IncrementalNearestNeighbors(grid, table, qx, qy)
    got = list(nn)
    assert len(got) == len(expected)
    for (gu, gd), (ed, eu) in zip(got, expected):
        assert math.isclose(gd, ed, abs_tol=1e-12)


def test_distances_non_decreasing():
    rng = random.Random(12)
    points = [(rng.random(), rng.random()) for _ in range(400)]
    table, grid = build(points, resolution=12)
    nn = IncrementalNearestNeighbors(grid, table, 0.9, 0.1)
    prev = -1.0
    for _, d in nn:
        assert d >= prev - 1e-12
        prev = d


def test_query_outside_bounding_box():
    rng = random.Random(13)
    points = [(rng.random(), rng.random()) for _ in range(100)]
    table, grid = build(points)
    expected = brute_force_order(table, 5.0, 5.0)
    got = list(IncrementalNearestNeighbors(grid, table, 5.0, 5.0))
    assert [u for u, _ in got] == [u for _, u in expected]


def test_duplicate_locations_all_reported():
    table, grid = build([(0.5, 0.5)] * 5)
    got = list(IncrementalNearestNeighbors(grid, table, 0.1, 0.1))
    assert sorted(u for u, _ in got) == [0, 1, 2, 3, 4]


def test_resumable_between_calls():
    rng = random.Random(14)
    points = [(rng.random(), rng.random()) for _ in range(60)]
    table, grid = build(points)
    nn = IncrementalNearestNeighbors(grid, table, 0.5, 0.5)
    first = [nn.next() for _ in range(10)]
    rest = list(nn)
    assert len(first) + len(rest) == 60
    assert first[-1][1] <= rest[0][1] + 1e-12


def test_count_tracks_reported_users():
    table, grid = build([(0.1, 0.1), (0.2, 0.2), (0.3, 0.3)])
    nn = IncrementalNearestNeighbors(grid, table, 0.0, 0.0)
    nn.next()
    nn.next()
    assert nn.count == 2


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ),
    st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    st.floats(min_value=-0.5, max_value=1.5, allow_nan=False),
    st.integers(min_value=1, max_value=9),
)
def test_property_matches_brute_force(points, qx, qy, resolution):
    table, grid = build(points, resolution=resolution)
    expected = [d for d, _ in brute_force_order(table, qx, qy)]
    got = [d for _, d in IncrementalNearestNeighbors(grid, table, qx, qy)]
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert math.isclose(g, e, abs_tol=1e-9)
