"""Tests for search statistics accounting."""

from repro.core.stats import SearchStats


def test_pops_total():
    stats = SearchStats(pops_social=3, pops_spatial=4, pops_index=5)
    assert stats.pops == 12


def test_pop_ratio():
    stats = SearchStats(pops_social=50)
    assert stats.pop_ratio(100) == 0.5
    assert stats.pop_ratio(0) == 0.0


def test_pop_ratio_can_exceed_one():
    stats = SearchStats(pops_social=150, pops_spatial=150)
    assert stats.pop_ratio(100) == 3.0


def test_merge_accumulates():
    a = SearchStats(pops_social=1, evaluations=2, elapsed=0.5, extra={"fallback": 1})
    b = SearchStats(pops_social=2, cache_hits=3, elapsed=0.25, extra={"fallback": 1})
    a.merge(b)
    assert a.pops_social == 3
    assert a.evaluations == 2
    assert a.cache_hits == 3
    assert a.elapsed == 0.75
    assert a.extra["fallback"] == 2


def test_defaults_zero():
    stats = SearchStats()
    assert stats.pops == 0
    assert stats.evaluations == 0
    assert stats.extra == {}
