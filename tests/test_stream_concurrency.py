"""Concurrency stress for the stream layer: movers vs subscribers.

Mirrors ``test_shard_concurrency``'s patterns for the subscription
registry: update classification fires inside the engine's write lock,
repairs/recomputes apply under the read lock, so concurrent movers and
subscription readers must neither deadlock nor observe a result an
already-applied update should have changed ("no torn reads") — and the
counters everything increments from multiple threads must add up.

Also pins the thread-safety of the :class:`ResultCache` counters: the
``get`` fast path runs under the engine's *read* lock (many threads at
once), so hit/miss/repair accounting has to be consistent without any
help from the engine's RW lock.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.engine import GeoSocialEngine
from repro.core.result import Neighbor, SSRQResult
from repro.service import QueryRequest, QueryService
from repro.service.cache import ResultCache
from repro.shard import ShardedGeoSocialEngine
from repro.stream import SubscriptionRegistry
from tests.conftest import random_instance

JOIN_TIMEOUT = 60.0


@pytest.fixture()
def setup():
    graph, locations = random_instance(90, seed=911, coverage=0.85)
    sharded = ShardedGeoSocialEngine(
        graph, locations, n_shards=4, num_landmarks=3, s=3, seed=3, max_workers=2
    )
    yield graph, sharded
    sharded.close()


def snapshot_engine(graph, engine):
    return GeoSocialEngine(
        graph,
        engine.locations.copy(),
        num_landmarks=3,
        s=3,
        seed=3,
        normalization=engine.normalization,
    )


def test_movers_and_subscribers_do_not_deadlock_and_stay_exact(setup):
    graph, sharded = setup
    service = QueryService(sharded, cache_size=256, max_workers=2)
    registry = SubscriptionRegistry(service)
    located = list(sharded.locations.located_users())
    subs = [
        registry.subscribe(u, k=4, alpha=a, method=m)
        for u, a, m in zip(located[:6], (0.3, 0.5, 0.3, 0.7, 0.5, 0.3),
                           ("spa", "tsa", "bruteforce", "spa", "tsa", "sfa"))
    ]
    failures: list[str] = []
    stop = threading.Event()

    def mover(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(60):
                if stop.is_set():
                    return
                u = rng.randrange(graph.n)
                if rng.random() < 0.85:
                    service.move_user(u, rng.uniform(-0.3, 1.3), rng.uniform(-0.3, 1.3))
                elif sharded.locations.has_location(u):
                    service.forget_location(u)
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(f"mover: {exc!r}")
            stop.set()

    def subscriber(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(40):
                if stop.is_set():
                    return
                sub = rng.choice(subs)
                try:
                    result = registry.result(sub)
                except ValueError:
                    continue  # query user currently unlocated: correct
                ranked = result.users
                if len(ranked) != len(set(ranked)):
                    failures.append(f"duplicates in maintained result: {ranked}")
                    stop.set()
                if rng.random() < 0.2:
                    registry.flush()
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(f"subscriber: {exc!r}")
            stop.set()

    threads = [threading.Thread(target=mover, args=(5,))] + [
        threading.Thread(target=subscriber, args=(s,)) for s in (1, 2, 3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
        assert not t.is_alive(), "deadlock: thread failed to finish in time"
    assert not failures, failures

    # Quiesced: every maintained result equals a fresh single engine
    # over a snapshot of the same data.
    fresh = snapshot_engine(graph, sharded)
    for sub in subs:
        try:
            maintained = registry.result(sub)
        except ValueError:
            with pytest.raises(ValueError):
                fresh.query(sub.user, sub.k, sub.alpha, sub.method)
            continue
        expected = fresh.query(sub.user, sub.k, sub.alpha, sub.method)
        assert maintained.users == expected.users, sub.method
    registry.close()
    service.close()


def test_no_stale_result_survives_its_invalidating_update(setup):
    """Sequential read-after-update: every update that can affect a
    subscription must be reflected by the very next read."""
    graph, sharded = setup
    service = QueryService(sharded, cache_size=128, max_workers=1)
    registry = SubscriptionRegistry(service)
    rng = random.Random(31)
    located = list(sharded.locations.located_users())
    sub = registry.subscribe(located[0], k=5, alpha=0.4, method="tsa")
    for round_no in range(25):
        # Move a current member (repair), a random user (screen), or
        # the query user itself (recompute).
        roll = rng.random()
        if roll < 0.4 and sub.result is not None and sub.result.neighbors:
            mover = rng.choice(sub.result.users)
        elif roll < 0.5:
            mover = sub.user
        else:
            mover = rng.randrange(graph.n)
        service.move_user(mover, rng.random(), rng.random())
        maintained = registry.result(sub)
        fresh = sharded.query(sub.user, 5, 0.4, "tsa")
        assert [(nb.user, nb.score) for nb in maintained] == [
            (nb.user, nb.score) for nb in fresh
        ], f"round {round_no}: stale result after moving {mover}"
    assert registry.stats.repairs_applied > 0
    assert registry.stats.recomputes_applied > 1
    registry.close()
    service.close()


def test_stream_counters_are_consistent_after_concurrent_churn(setup):
    """Every location update observed must be accounted: the sum of
    per-(update, subscription) classifications equals what the fan-out
    actually visited, and applied passes never exceed marks."""
    graph, sharded = setup
    service = QueryService(sharded, cache_size=64, max_workers=2)
    registry = SubscriptionRegistry(service)
    located = list(sharded.locations.located_users())
    for u in located[:5]:
        registry.subscribe(u, k=4, alpha=0.4, method="spa")
    updates_sent = 120
    workers = 4

    def mover(seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(updates_sent // workers):
            service.move_user(rng.randrange(graph.n), rng.random(), rng.random())

    threads = [threading.Thread(target=mover, args=(s,)) for s in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
        assert not t.is_alive()
    registry.flush()
    stats = registry.stats
    assert stats.location_updates == updates_sent
    assert stats.repairs_applied <= stats.repair_marks
    assert stats.recomputes_applied >= 1  # initial subscriptions count
    # Applied + pending covers every mark (nothing silently dropped).
    assert not any(sub.dirty for sub in registry)
    registry.close()
    service.close()


# ------------------------------------------------------- cache counters


def test_result_cache_counters_are_thread_safe_off_the_engine_lock():
    """The ``get`` fast path runs concurrently under the engine's READ
    lock — the cache's own lock is all that guards its counters.
    Hammer get/put/invalidate from many threads with no engine lock at
    all and require exact accounting."""
    cache = ResultCache(capacity=256)
    lookups_per_thread = 400
    threads_n = 6
    barrier = threading.Barrier(threads_n)

    def make_result(user: int) -> SSRQResult:
        return SSRQResult(user, 1, 0.5, [Neighbor(user + 1, 0.5, 1.0, 0.5)])

    def hammer(seed: int) -> None:
        rng = random.Random(seed)
        barrier.wait()
        for i in range(lookups_per_thread):
            user = rng.randrange(32)
            key = (user, 1, 0.5, "tsa", None, (1.0, 1.0))
            if cache.get(key) is None:
                cache.put(key, make_result(user))
            if i % 50 == 49:
                cache.invalidate_location_update(
                    rng.randrange(64),
                    rng.random(),
                    rng.random(),
                    query_location=lambda u: (0.0, 0.0),
                    d_max=1.0,
                )

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
        assert not t.is_alive()
    stats = cache.stats
    # Exactly one hit-or-miss per get: nothing lost to racy increments.
    assert stats.hits + stats.misses == threads_n * lookups_per_thread
    # Two threads may miss the same key and both put (the second is a
    # refresh, which by design does not count as an insertion) — so
    # insertions never exceed misses, and the size balance is *exact*:
    # repaired-in-place entries stay, so repairs must not appear in it.
    assert stats.insertions <= stats.misses
    assert len(cache) == stats.insertions - stats.evictions - stats.invalidated


def test_cache_repair_counters_attribute_exactly_single_threaded():
    """Deterministic pin of the reuse/repair/recompute split: a member
    move on a repairable method repairs in place, a far-away move is
    reused, a query-user move evicts."""
    cache = ResultCache(capacity=8)
    key = (0, 2, 0.5, "tsa", None, (1.0, 1.0))
    result = SSRQResult(
        0, 2, 0.5,
        [Neighbor(5, 0.2, 0.1, 0.1), Neighbor(9, 0.4, 0.2, 0.3)],
    )
    cache.put(key, result)
    # 1. far-away non-member: provably out -> reused, entry intact.
    out = cache.invalidate_location_update(
        7, 100.0, 100.0, query_location=lambda u: (0.0, 0.0), d_max=1.0
    )
    assert (int(out), out.repaired, out.reused) == (0, 0, 1)
    assert cache.peek(key) is result
    # 2. member 9 moves closer: repaired in place (scores re-sorted).
    out = cache.invalidate_location_update(
        9, 0.0, 0.0, query_location=lambda u: (0.0, 0.0), d_max=1.0
    )
    assert (int(out), out.repaired) == (0, 1)
    repaired = cache.peek(key)
    assert repaired is not None and repaired is not result
    assert repaired.users[0] == 9 and repaired.neighbors[0].spatial == 0.0
    # 3. member 9 moves past the k-th key: the old (k+1)-th is unknown,
    # so the entry must be evicted, not repaired.
    out = cache.invalidate_location_update(
        9, 50.0, 50.0, query_location=lambda u: (0.0, 0.0), d_max=1.0
    )
    assert (int(out), out.repaired) == (1, 0)
    assert cache.peek(key) is None
    assert cache.stats.repaired == 1
    assert cache.stats.invalidated == 1
    assert cache.stats.reused >= 1


def test_cache_repair_is_restricted_to_forward_methods():
    """AIS entries must still evict on member moves: their stored
    scores are schedule-dependent, so an in-place repair could not
    promise bitwise equality with a fresh query."""
    cache = ResultCache(capacity=8)
    key = (0, 1, 0.5, "ais", None, (1.0, 1.0))
    cache.put(key, SSRQResult(0, 1, 0.5, [Neighbor(9, 0.2, 0.1, 0.1)]))
    out = cache.invalidate_location_update(
        9, 0.0, 0.0, query_location=lambda u: (0.0, 0.0), d_max=1.0
    )
    assert (int(out), out.repaired) == (1, 0)
    assert cache.peek(key) is None


def test_service_stats_expose_reuse_repair_recompute(setup):
    """The serving layer surfaces the cache's repair-awareness."""
    graph, sharded = setup
    service = QueryService(sharded, cache_size=128, max_workers=1)
    rng = random.Random(9)
    located = list(sharded.locations.located_users())
    q = located[0]
    for _ in range(30):
        resp = service.query(QueryRequest(q, k=5, alpha=0.4, method="tsa"))
        members = resp.result.users
        mover = rng.choice(members) if rng.random() < 0.7 else rng.randrange(graph.n)
        x, y = sharded.locations.get(mover) or (rng.random(), rng.random())
        service.move_user(
            mover,
            min(1.0, max(0.0, x + rng.uniform(-0.02, 0.02))),
            min(1.0, max(0.0, y + rng.uniform(-0.02, 0.02))),
        )
    info = service.cache_info()
    snap = service.stats.snapshot()
    assert info["repaired"] == snap["repaired_entries"]
    assert info["reused"] == snap["reused_entries"]
    assert info["repaired"] > 0, "member jitter must exercise in-place repair"
    assert info["reused"] > 0
    service.close()
