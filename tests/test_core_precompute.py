"""Tests for social-neighbour pre-computation (AIS-Cache)."""

import math

import pytest

from repro.core.precompute import SocialNeighborCache
from repro.graph.traversal import dijkstra_distances
from tests.conftest import assert_same_scores, random_instance

INF = math.inf


@pytest.fixture(scope="module")
def engine():
    from repro.core.engine import GeoSocialEngine

    graph, locations = random_instance(250, seed=341, coverage=0.85)
    return GeoSocialEngine(graph, locations, num_landmarks=4, s=4, seed=1)


class TestSocialNeighborCache:
    def test_list_is_ascending_and_correct(self, engine):
        cache = SocialNeighborCache(engine.graph, t=20)
        truth = dijkstra_distances(engine.graph, 0)
        entries = cache.list_for(0)
        assert len(entries) == 20
        distances = [p for p, _ in entries]
        assert distances == sorted(distances)
        for p, v in entries:
            assert math.isclose(p, truth[v], abs_tol=1e-12)

    def test_excludes_source(self, engine):
        cache = SocialNeighborCache(engine.graph, t=20)
        assert all(v != 0 for _, v in cache.list_for(0))

    def test_completeness_flag(self, engine):
        big = SocialNeighborCache(engine.graph, t=10_000)
        big.list_for(0)
        assert big.is_complete(0)
        small = SocialNeighborCache(engine.graph, t=5)
        small.list_for(0)
        assert not small.is_complete(0)

    def test_lists_cached(self, engine):
        cache = SocialNeighborCache(engine.graph, t=10)
        first = cache.list_for(3)
        assert cache.list_for(3) is first

    def test_prebuild(self, engine):
        cache = SocialNeighborCache(engine.graph, t=10)
        cache.prebuild([0, 1, 2])
        assert all(u in cache._lists for u in (0, 1, 2))

    def test_invalid_t(self, engine):
        with pytest.raises(ValueError):
            SocialNeighborCache(engine.graph, t=0)


class TestCachedSocialFirst:
    def test_small_t_falls_back_and_is_correct(self, engine):
        users = [u for u in engine.located_users()][:5]
        for user in users:
            expected = engine.query(user, k=10, alpha=0.3, method="bruteforce")
            got = engine.query(user, k=10, alpha=0.3, method="ais-cache", t=5)
            assert_same_scores(expected, got)
            assert got.stats.extra.get("fallback") == 1

    def test_large_t_answers_from_cache(self, engine):
        users = [u for u in engine.located_users()][:5]
        for user in users:
            expected = engine.query(user, k=10, alpha=0.3, method="bruteforce")
            got = engine.query(user, k=10, alpha=0.3, method="ais-cache", t=10_000)
            assert_same_scores(expected, got)
            assert "fallback" not in got.stats.extra

    def test_alpha_zero_routed_to_spa(self, engine):
        user = next(iter(engine.located_users()))
        expected = engine.query(user, k=10, alpha=0.0, method="bruteforce")
        got = engine.query(user, k=10, alpha=0.0, method="ais-cache", t=10)
        assert_same_scores(expected, got)

    def test_cache_reused_across_queries(self, engine):
        user = next(iter(engine.located_users()))
        engine.query(user, k=5, alpha=0.5, method="ais-cache", t=37)
        cache = engine.neighbor_cache(37)
        assert user in cache._lists
