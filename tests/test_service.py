"""Service layer: batching, concurrency, and the update-aware cache.

The contracts pinned here are the ones the serving layer sells:
batched results identical to a sequential ``engine.query`` loop for
every method, cache invalidation that is *exact* under location
updates (surviving entries still verify against brute force), and no
shared-state corruption under a worker pool.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.engine import METHODS, GeoSocialEngine
from repro.service import (
    QueryRequest,
    QueryResponse,
    QueryService,
    ReadWriteLock,
    ResultCache,
)
from repro.bench.service_workload import zipf_arrivals
from tests.conftest import assert_same_scores, random_instance


@pytest.fixture()
def engine():
    graph, locations = random_instance(150, seed=71, coverage=0.8)
    return GeoSocialEngine(graph, locations, num_landmarks=3, s=3, seed=3)


def located(engine, count):
    return list(engine.locations.located_users())[:count]


# ---------------------------------------------------------------- requests


def test_request_coercion_and_validation():
    assert QueryRequest.coerce(7, k=5) == QueryRequest(7, k=5)
    req = QueryRequest(3, k=2, alpha=0.9, method="sfa")
    assert QueryRequest.coerce(req) is req
    with pytest.raises(TypeError):
        QueryRequest.coerce("seven")
    with pytest.raises(TypeError):
        QueryRequest.coerce(True)
    with pytest.raises(ValueError):
        QueryRequest(1, k=0)
    with pytest.raises(ValueError):
        QueryRequest(1, alpha=1.5)


# ---------------------------------------------------------------- batching


def test_query_many_matches_sequential_for_every_method(engine):
    users = located(engine, 4)
    with QueryService(engine, max_workers=3, cache_size=0) as service:
        for method in METHODS:
            requests = [
                QueryRequest(user=u, k=k, alpha=alpha, method=method)
                for u in users
                for k, alpha in ((3, 0.3), (8, 0.7))
            ]
            responses = service.query_many(requests)
            assert len(responses) == len(requests)
            for response, request in zip(responses, requests):
                expected = engine.query(
                    request.user, request.k, request.alpha, request.method
                )
                assert response.request == request
                # Byte-identical ranking: same users, same scores.
                assert response.result.users == expected.users
                assert response.result.scores == expected.scores


def test_query_many_accepts_plain_user_ids_with_defaults(engine):
    users = located(engine, 5)
    with QueryService(engine, max_workers=2, cache_size=0) as service:
        responses = service.query_many(users, k=4, alpha=0.5, method="sfa")
    for response, user in zip(responses, users):
        expected = engine.query(user, 4, 0.5, "sfa")
        assert response.result.users == expected.users


def test_query_many_heterogeneous_batch_preserves_order(engine):
    users = located(engine, 6)
    requests = [
        QueryRequest(users[0], k=2, alpha=0.0, method="spa"),
        QueryRequest(users[1], k=5, alpha=1.0, method="sfa"),
        QueryRequest(users[2], k=3, alpha=0.4, method="ais"),
        QueryRequest(users[3], k=4, alpha=0.6, method="tsa"),
        QueryRequest(users[4], k=3, alpha=0.4, method="bruteforce"),
    ]
    with QueryService(engine, max_workers=4, cache_size=16) as service:
        responses = service.query_many(requests)
    assert [r.request for r in responses] == requests
    for response in responses:
        req = response.request
        expected = engine.query(req.user, req.k, req.alpha, req.method)
        assert response.result.users == expected.users


def test_in_batch_deduplication(engine):
    user = located(engine, 1)[0]
    req = QueryRequest(user, k=3, alpha=0.3)
    with QueryService(engine, max_workers=2, cache_size=0) as service:
        responses = service.query_many([req, req, req])
        assert service.stats.executed == 1
        assert service.stats.deduplicated == 2
    assert [r.deduplicated for r in responses] == [False, True, True]
    # All three share the identical (deterministic) ranking.
    assert len({tuple(r.result.users) for r in responses}) == 1


def test_engine_query_many_delegate(engine):
    users = located(engine, 5)
    results = engine.query_many(users, k=4, alpha=0.3, method="ais")
    for user, result in zip(users, results):
        expected = engine.query(user, 4, 0.3, "ais")
        assert result.users == expected.users
        assert result.scores == expected.scores
    # Mixed request batches flow through too.
    mixed = engine.query_many([users[0], QueryRequest(users[1], k=2, alpha=0.8)])
    assert len(mixed[1]) <= 2


# ---------------------------------------------------------------- caching


def test_cache_hit_on_repeat_and_stats(engine):
    user = located(engine, 1)[0]
    with QueryService(engine, max_workers=1, cache_size=32) as service:
        first = service.query(user, k=5)
        again = service.query(user, k=5)
        other_k = service.query(user, k=6)
        info = service.cache_info()
    assert not first.cached and again.cached and not other_k.cached
    assert again.result.users == first.result.users
    assert service.stats.cache_hits == 1
    assert service.stats.cache_misses == 2
    assert 0.0 < service.stats.hit_rate < 1.0
    assert info["size"] == 2 and info["hits"] == 1


def test_cache_key_separates_parameters(engine):
    user = located(engine, 1)[0]
    with QueryService(engine, cache_size=32) as service:
        service.query(user, k=5, alpha=0.3, method="ais")
        assert not service.query(user, k=5, alpha=0.4, method="ais").cached
        assert not service.query(user, k=5, alpha=0.3, method="sfa").cached
        assert service.query(user, k=5, alpha=0.3, method="ais").cached


def test_lru_eviction_at_capacity(engine):
    users = located(engine, 6)
    with QueryService(engine, cache_size=3) as service:
        for user in users:
            service.query(user, k=3)
        assert len(service.cache) == 3
        assert service.cache.stats.evictions == 3
        # The most recent three are cached; the oldest are gone.
        assert service.query(users[-1], k=3).cached
        assert not service.query(users[0], k=3).cached


def test_move_evicts_movers_own_line(engine):
    user = located(engine, 1)[0]
    with QueryService(engine, cache_size=32) as service:
        service.query(user, k=5, alpha=0.4)
        service.move_user(user, 0.9, 0.9)
        refreshed = service.query(user, k=5, alpha=0.4)
        assert not refreshed.cached
        truth = engine.query(user, 5, 0.4, "bruteforce")
        assert_same_scores(refreshed.result, truth)


def test_move_evicts_entries_containing_the_mover(engine):
    users = located(engine, 8)
    with QueryService(engine, cache_size=64) as service:
        responses = {u: service.query(u, k=5, alpha=0.4) for u in users}
        # Pick a user that appears in someone else's cached top-k.
        mover, affected_query = next(
            (nb.user, q)
            for q, resp in responses.items()
            for nb in resp.result.neighbors
            if nb.user != q
        )
        service.move_user(mover, 0.99, 0.99)
        refreshed = service.query(affected_query, k=5, alpha=0.4)
        assert not refreshed.cached, "entries containing the mover must be evicted"
        truth = engine.query(affected_query, 5, 0.4, "bruteforce")
        assert_same_scores(refreshed.result, truth)


def test_surviving_cache_entries_stay_exact_under_random_moves(engine):
    """The exactness property behind the screening invalidation: after
    arbitrary interleaved moves, every cache entry the screen *kept*
    must still match a fresh brute-force answer."""
    rng = random.Random(17)
    users = located(engine, 20)
    with QueryService(engine, cache_size=256) as service:
        for round_no in range(6):
            for u in users:
                service.query(u, k=4, alpha=rng.choice([0.2, 0.5, 1.0]))
            for _ in range(5):
                mover = rng.randrange(engine.graph.n)
                service.move_user(mover, rng.random(), rng.random())
            # Audit every surviving entry against brute force.
            for key, cached in list(service.cache._entries.items()):
                _, k, alpha = key[0], key[1], key[2]
                truth = engine.query(cached.query_user, k, alpha, "bruteforce")
                assert_same_scores(cached, truth)
        assert service.stats.invalidated_entries > 0


def test_forget_location_eviction(engine):
    users = located(engine, 6)
    with QueryService(engine, cache_size=64) as service:
        responses = {u: service.query(u, k=5, alpha=0.4) for u in users}
        leaver, affected_query = next(
            (nb.user, q)
            for q, resp in responses.items()
            for nb in resp.result.neighbors
            if nb.user != q and q != resp.result.neighbors[0].user
        )
        service.forget_location(leaver)
        refreshed = service.query(affected_query, k=5, alpha=0.4)
        assert not refreshed.cached
        assert leaver not in refreshed.result.users


def test_pure_social_entries_survive_location_updates(engine):
    user = located(engine, 1)[0]
    other = located(engine, 2)[1]
    with QueryService(engine, cache_size=32) as service:
        service.query(user, k=5, alpha=1.0, method="sfa")
        service.move_user(other, 0.1, 0.1)
        service.move_user(user, 0.8, 0.2)
        # alpha=1 rankings are purely social: both moves are irrelevant.
        assert service.query(user, k=5, alpha=1.0, method="sfa").cached


def test_edge_update_full_flush_by_default(engine):
    users = located(engine, 4)
    with QueryService(engine, cache_size=64) as service:
        for u in users:
            service.query(u, k=4, alpha=0.5)
        assert len(service.cache) == len(users)
        u, v = users[0], users[1]
        service.update_edge(u, v, 0.01)
        assert len(service.cache) == 0
        assert service.cache.epoch == 1
        assert service.stats.full_invalidations == 1


def test_edge_update_blast_radius_scopes_eviction(engine):
    users = located(engine, 10)
    with QueryService(engine, cache_size=64, edge_blast_radius=1) as service:
        for u in users:
            service.query(u, k=3, alpha=1.0, method="sfa")
        u, v = users[0], users[1]
        before = len(service.cache)
        service.update_edge(u, v, 0.2)
        after = len(service.cache)
        assert after < before, "endpoint cache lines must be evicted"
        assert service.cache.epoch == 0, "blast-radius path must not epoch-flush"
        assert not service.query(u, k=3, alpha=1.0, method="sfa").cached


def test_scan_limit_falls_back_to_epoch_flush(engine):
    users = located(engine, 8)
    with QueryService(engine, cache_size=64, scan_limit=2) as service:
        for u in users:
            service.query(u, k=3, alpha=0.4)
        service.move_user(users[0], 0.5, 0.5)
        assert len(service.cache) == 0
        assert service.cache.epoch == 1


def test_direct_engine_updates_still_invalidate(engine):
    """Updates applied straight to the engine (bypassing the service)
    must reach the cache through the engine's listener hooks."""
    user = located(engine, 1)[0]
    with QueryService(engine, cache_size=32) as service:
        service.query(user, k=5, alpha=0.4)
        engine.move_user(user, 0.42, 0.42)
        assert not service.query(user, k=5, alpha=0.4).cached


def test_close_flushes_and_rejects_further_use(engine):
    user = located(engine, 1)[0]
    service = QueryService(engine, cache_size=32)
    service.query(user, k=5)
    service.close()
    # The cache is flushed (its listeners are gone, so keeping entries
    # would mean serving stale results) and every entry point raises.
    assert len(service.cache) == 0
    for call in (
        lambda: service.query(user, k=5),
        lambda: service.query_many([user], k=5),
        lambda: service.move_user(user, 0.3, 0.3),
        lambda: service.update_edge(0, 1, 0.5),
        lambda: service.rebuild_engine(),
    ):
        with pytest.raises(RuntimeError):
            call()
    # Listeners are detached: direct engine updates no longer touch it.
    before = service.cache.stats.invalidated
    engine.move_user(user, 0.3, 0.3)
    assert service.cache.stats.invalidated == before


def test_services_share_the_engines_lock(engine):
    """Updates through one service (or the bare engine) must exclude
    queries through every other service over the same engine."""
    users = located(engine, 8)
    failures: list[str] = []
    with QueryService(engine, cache_size=64) as svc_a, QueryService(
        engine, cache_size=0
    ) as svc_b:

        def reader() -> None:
            rng = random.Random(3)
            for _ in range(30):
                for response in svc_a.query_many(
                    [QueryRequest(rng.choice(users), k=4, alpha=0.4) for _ in range(3)]
                ):
                    ranked = response.result.users
                    if len(ranked) != len(set(ranked)):
                        failures.append(f"duplicates: {ranked}")

        def writer() -> None:
            rng = random.Random(4)
            for _ in range(30):
                svc_b.move_user(rng.randrange(engine.graph.n), rng.random(), rng.random())
                engine.move_user(rng.randrange(engine.graph.n), rng.random(), rng.random())

        threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures[:3]
        for u in users[:3]:
            got = svc_a.query(u, k=4, alpha=0.4)
            truth = engine.query(u, 4, 0.4, "bruteforce")
            assert_same_scores(got.result, truth)


# ---------------------------------------------------------------- cache unit


def test_result_cache_refresh_reindexes_members():
    """Refreshing a key with a different result must swap the inverted
    indexes, or later invalidation misses the new members."""
    from repro.core.result import Neighbor, SSRQResult

    cache = ResultCache(capacity=4)
    key = (0, 1, 0.5, "ais", None, (1.0, 1.0))
    cache.put(key, SSRQResult(0, 1, 0.5, [Neighbor(5, 0.2, 0.1, 0.1)]))
    cache.put(key, SSRQResult(0, 1, 0.5, [Neighbor(9, 0.2, 0.1, 0.1)]))
    evicted = cache.invalidate_location_update(
        9, 100.0, 100.0, query_location=lambda u: (0.0, 0.0), d_max=1.0
    )
    assert evicted == 1, "entry containing refreshed member 9 must be evicted"
    assert len(cache) == 0


def test_engine_query_many_honors_changed_max_workers(engine):
    users = located(engine, 3)
    engine.query_many(users, k=3, max_workers=2)
    assert engine._services[2].max_workers == 2
    engine.query_many(users, k=3, max_workers=1)
    assert engine._services[1].max_workers == 1
    # Earlier widths keep their (possibly in-flight) services alive.
    assert set(engine._services) == {1, 2}
    engine.query_many(users, k=3)  # default width gets its own entry
    assert None in engine._services


def test_edge_updates_do_not_corrupt_live_queries(engine):
    """update_edge maintains a *companion* landmark table: the engine's
    own bounds must stay admissible for the graph it still searches."""
    users = located(engine, 6)
    with QueryService(engine, cache_size=32) as service:
        # A batch of weight decreases: applied in place, these would
        # make the live landmark rows underestimate nothing but
        # *overestimate* distances on the un-updated CSR graph, turning
        # the pruning bounds inadmissible.
        applied = 0
        for u in range(engine.graph.n):
            for v, w in engine.graph.neighbors(u):
                if u < v and applied < 15:
                    service.update_edge(u, v, w * 0.01)
                    applied += 1
        assert applied == 15
        for q in users:
            got = engine.query(q, 5, 0.5, "ais")
            truth = engine.query(q, 5, 0.5, "bruteforce")
            assert_same_scores(got, truth)
        # Folding the updates in yields a consistent *new* engine whose
        # answers reflect the strengthened ties.
        new_engine = service.rebuild_engine()
        assert service.engine is new_engine
        assert new_engine is not engine
        for q in users:
            got = new_engine.query(q, 5, 0.5, "ais")
            truth = new_engine.query(q, 5, 0.5, "bruteforce")
            assert_same_scores(got, truth)


def test_cache_invalidation_survives_foreign_key_shapes():
    """Plain-LRU entries (blessed by the class docstring) must not
    crash the update-aware invalidation paths."""
    cache = ResultCache(capacity=4)
    cache.put(("a",), "result-a")
    evicted = cache.invalidate_location_update(
        5, 0.1, 0.2, query_location=lambda u: (0.0, 0.0), d_max=1.0
    )
    assert evicted == 1  # foreign shapes are evicted conservatively
    cache.put(("b",), "result-b")
    assert cache.invalidate_edge_update(0, 1) == 1  # full flush path


def test_result_cache_plain_lru_semantics():
    cache = ResultCache(capacity=2)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    assert cache.get(("a",)) == 1  # refreshes "a"
    cache.put(("c",), 3)  # evicts LRU "b"
    assert cache.get(("b",)) is None
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.invalidate_all() == 2
    assert cache.epoch == 1 and len(cache) == 0


# ---------------------------------------------------------------- concurrency


def test_concurrent_batches_match_sequential(engine):
    """Hammer one service from many threads; every response must equal
    the sequential answer (no shared-state corruption)."""
    users = located(engine, 12)
    expected = {
        (u, k, alpha, method): engine.query(u, k, alpha, method)
        for u in users
        for (k, alpha, method) in ((3, 0.3, "ais"), (5, 0.7, "tsa"), (4, 0.5, "sfa-ch"))
    }
    errors: list[str] = []
    with QueryService(engine, max_workers=4, cache_size=64) as service:

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(12):
                keys = rng.sample(sorted(expected), 5)
                requests = [QueryRequest(u, k, a, m) for (u, k, a, m) in keys]
                responses = service.query_many(requests)
                for key, response in zip(keys, responses):
                    if response.result.users != expected[key].users:
                        errors.append(f"{key}: {response.result.users}")

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert not errors, errors[:5]


def test_concurrent_queries_and_updates_no_corruption(engine):
    """Writers (moves) interleave with readers (batches): the RW lock
    must keep the indexes consistent and the answers exact afterwards."""
    users = located(engine, 10)
    stop = threading.Event()
    failures: list[str] = []
    with QueryService(engine, max_workers=3, cache_size=128) as service:

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            while not stop.is_set():
                batch = [QueryRequest(rng.choice(users), k=4, alpha=0.4) for _ in range(4)]
                for response in service.query_many(batch):
                    ranked = response.result.users
                    if len(ranked) != len(set(ranked)):
                        failures.append(f"duplicate users in ranking: {ranked}")
                    scores = response.result.scores
                    if scores != sorted(scores):
                        failures.append(f"unsorted scores: {scores}")

        def writer() -> None:
            rng = random.Random(99)
            for _ in range(40):
                service.move_user(rng.randrange(engine.graph.n), rng.random(), rng.random())

        readers = [threading.Thread(target=reader, args=(s,)) for s in range(3)]
        for t in readers:
            t.start()
        wt = threading.Thread(target=writer)
        wt.start()
        wt.join()
        stop.set()
        for t in readers:
            t.join()

        assert not failures, failures[:5]
        # Post-condition: indexes consistent, fresh answers exact.
        for u in users[:4]:
            got = service.query(u, k=5, alpha=0.5)
            truth = engine.query(u, 5, 0.5, "bruteforce")
            assert_same_scores(got.result, truth)


def test_lazy_searcher_construction_is_race_free():
    graph, locations = random_instance(80, seed=5, coverage=1.0)
    engine = GeoSocialEngine(graph, locations, num_landmarks=2, s=3, seed=1)
    user = next(iter(locations.located_users()))
    results: list = []

    def build(method: str) -> None:
        results.append((method, engine.query(user, 3, 0.5, method).users))

    threads = [
        threading.Thread(target=build, args=(m,))
        for m in ("ais", "ais", "sfa-ch", "sfa-ch", "ais-cache", "ais-cache")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    by_method: dict[str, set[tuple]] = {}
    for method, users_ in results:
        by_method.setdefault(method, set()).add(tuple(users_))
    for method, outcomes in by_method.items():
        assert len(outcomes) == 1, f"non-deterministic {method}: {outcomes}"
    # Exactly one searcher instance per method key survives.
    assert len([k for k in engine._searchers if k.startswith("ais-cache")]) == 1


# ---------------------------------------------------------------- primitives


def test_read_write_lock_excludes_writers():
    lock = ReadWriteLock()
    log: list[str] = []
    with lock.read_locked():
        writer_started = threading.Event()

        def write() -> None:
            writer_started.set()
            with lock.write_locked():
                log.append("write")

        t = threading.Thread(target=write)
        t.start()
        writer_started.wait()
        log.append("read-held")
    t.join()
    assert log == ["read-held", "write"]


def test_zipf_arrivals_deterministic_and_skewed():
    users = list(range(100))
    a = zipf_arrivals(users, count=500, skew=1.2, seed=9)
    b = zipf_arrivals(users, count=500, skew=1.2, seed=9)
    assert a == b
    counts = sorted(
        (a.count(u) for u in set(a)), reverse=True
    )
    # Skew: the hottest user dominates the median one.
    assert counts[0] >= 5 * max(counts[len(counts) // 2], 1) or counts[0] > 25
    with pytest.raises(ValueError):
        zipf_arrivals([], 5)


def test_service_stats_snapshot_shape(engine):
    user = located(engine, 1)[0]
    with QueryService(engine, cache_size=8) as service:
        service.query(user, k=3)
        snap = service.stats.snapshot()
    for key in ("requests", "hit_rate", "executed", "per_method", "total_pops"):
        assert key in snap
    assert snap["per_method"] == {"ais": 1}
    assert snap["total_pops"] > 0
    assert isinstance(repr(service), str) and "QueryService" in repr(service)
