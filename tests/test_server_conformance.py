"""Differential conformance: the HTTP boundary returns *bit-identical*
answers to direct :class:`QueryService` calls.

Every test here compares a response that travelled the full network
path — JSON encoding, asyncio framing, the admission queue, the
coalescing worker, JSON decoding — against a reference computed by a
second, cache-free ``QueryService`` over the *same* engine.  Equality
is exact dict equality (ids, float scores via repr round-tripping,
tie-break order, ``result.method``), not approximate: the serving
boundary is not allowed to perturb the paper's rankings in any way.

The suite runs under both kernel backends via the CI matrix
(``REPRO_BACKEND=python`` / ``numpy``).
"""

from __future__ import annotations

import math
import threading

import pytest

from repro import METHODS, GeoSocialEngine, QueryService, route_method
from repro.datasets.synthetic import build_dataset
from repro.server import ServerClient, ServerThread
from repro.service.model import QueryRequest, result_payload

ALPHAS = (0.0, 0.3, 1.0)  # both endpoints (spatial-only, social-only) + mixed


@pytest.fixture(scope="module")
def engine() -> GeoSocialEngine:
    dataset = build_dataset("server-conf", n=400, avg_degree=8.0, coverage=0.8, seed=11)
    return GeoSocialEngine.from_dataset(dataset, num_landmarks=4, s=5, seed=1)


@pytest.fixture(scope="module")
def service(engine):
    with QueryService(engine) as svc:
        yield svc


@pytest.fixture(scope="module")
def reference(engine):
    """Cache-free service over the *same* engine — the oracle."""
    with QueryService(engine, cache_size=0) as ref:
        yield ref


@pytest.fixture(scope="module")
def handle(service):
    with ServerThread(service, queue_depth=32, workers=2, heartbeat_s=0.2) as h:
        yield h


@pytest.fixture()
def client(handle):
    with ServerClient(handle.host, handle.port) as c:
        yield c


@pytest.fixture(scope="module")
def users(engine) -> list[int]:
    located = sorted(engine.locations.located_users())
    return [located[0], located[len(located) // 2]]


def expected_result(reference, user, **params) -> dict:
    return result_payload(reference.query(QueryRequest(user, **params)).result)


@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("method", METHODS)
def test_query_conformance(client, reference, users, method, alpha):
    """Every method at every alpha endpoint: the HTTP answer equals the
    direct answer field-for-field, float-for-float."""
    for user in users:
        served = client.query(user, k=10, alpha=alpha, method=method)
        assert served["result"] == expected_result(
            reference, user, k=10, alpha=alpha, method=method
        )
        # alpha endpoints reroute (e.g. sfa@alpha=0 -> spa); the wire
        # reports the method that actually ran, same as the direct path
        assert served["result"]["method"] == route_method(method, alpha)


def test_auto_conformance(client, reference, users):
    """``method="auto"`` conformance is score-exact: the adaptive
    planner is shared engine state, so interleaved resolutions may pick
    different (equivalent) methods — the *scores* must still agree."""
    for user in users:
        served = client.query(user, k=10, alpha=0.3, method="auto")
        direct = expected_result(reference, user, k=10, alpha=0.3, method="auto")
        assert served["result"]["method"] in METHODS
        served_scores = [nb["score"] for nb in served["result"]["neighbors"]]
        direct_scores = [nb["score"] for nb in direct["neighbors"]]
        assert served_scores == pytest.approx(direct_scores, abs=1e-9)


def test_infinity_survives_the_wire(client, reference, users):
    """At ``alpha == 0`` social distances are legitimately infinite;
    the JSON layer must round-trip them as floats, not nulls."""
    user = users[0]
    served = client.query(user, k=10, alpha=0.0, method="sfa")
    direct = expected_result(reference, user, k=10, alpha=0.0, method="sfa")
    assert served["result"] == direct
    assert any(nb["social"] == math.inf for nb in served["result"]["neighbors"])


def test_batch_conformance(client, reference, users):
    """A batch with per-request overrides and top-level defaults equals
    ``query_many`` over the equivalent request list, pairwise."""
    requests = [
        {"user": users[0]},
        {"user": users[1], "k": 5},
        {"user": users[0], "alpha": 1.0, "method": "spa"},
        {"user": users[0]},  # duplicate: exercises batch dedup
    ]
    served = client.query_batch(requests, k=8, alpha=0.3, method="ais")
    direct = reference.query_many(
        [
            QueryRequest(users[0], k=8, alpha=0.3, method="ais"),
            QueryRequest(users[1], k=5, alpha=0.3, method="ais"),
            QueryRequest(users[0], k=8, alpha=1.0, method="spa"),
            QueryRequest(users[0], k=8, alpha=0.3, method="ais"),
        ]
    )
    assert served["count"] == len(direct)
    for got, want in zip(served["responses"], direct):
        assert got["result"] == result_payload(want.result)
        assert got["request"]["user"] == want.request.user
        assert got["request"]["k"] == want.request.k


def test_concurrent_queries_conform(handle, reference, engine):
    """Many concurrent single queries — the coalescing path — each come
    back identical to their individually computed reference."""
    located = sorted(engine.locations.located_users())
    pool = [located[i % len(located)] for i in range(16)]
    expected = {
        (user, alpha): expected_result(reference, user, k=6, alpha=alpha, method="ais")
        for user in set(pool)
        for alpha in (0.3, 0.7)
    }
    failures: list[str] = []

    def worker(user: int, alpha: float) -> None:
        with ServerClient(handle.host, handle.port) as c:
            served = c.query(user, k=6, alpha=alpha, method="ais")
        if served["result"] != expected[(user, alpha)]:
            failures.append(f"user={user} alpha={alpha}")

    threads = [
        threading.Thread(target=worker, args=(user, alpha))
        for i, user in enumerate(pool)
        for alpha in ((0.3,) if i % 2 else (0.7,))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not failures, f"diverging responses: {failures}"


def test_update_location_then_query_conforms(client, reference, engine):
    """A location move through the API is immediately visible, and
    post-update answers still match the direct path exactly."""
    located = sorted(engine.locations.located_users())
    mover, observer = located[-1], located[1]
    before = client.query(observer, k=10, alpha=0.3, method="ais")["result"]
    assert client.move(mover, 0.123, 0.456)["ok"] is True
    x, y = engine.locations.get(mover)
    assert (x, y) == (0.123, 0.456)
    after = client.query(observer, k=10, alpha=0.3, method="ais")["result"]
    assert after == expected_result(reference, observer, k=10, alpha=0.3, method="ais")
    # the move itself is also served conformantly for the moved user
    assert client.query(mover, k=10, alpha=0.3, method="ais")["result"] == (
        expected_result(reference, mover, k=10, alpha=0.3, method="ais")
    )
    assert before["k"] == after["k"]


def test_update_edge_then_query_conforms(client, reference, users):
    """Edge updates are buffered by the service (pending until the next
    rebuild); the HTTP path must report that and stay conformant."""
    served = client.update_edge(users[0], users[1], 0.05)
    assert served["ok"] is True
    assert served["pending_edge_updates"] >= 1
    after = client.query(users[0], k=10, alpha=1.0, method="spa")["result"]
    assert after == expected_result(reference, users[0], k=10, alpha=1.0, method="spa")


def test_forget_location_parity(client, reference, engine):
    """Forgetting a query user's location makes both paths reject the
    query the same way (HTTP: 400/unlocated_user)."""
    located = sorted(engine.locations.located_users())
    victim = located[-2]
    assert client.forget(victim)["forgotten"] is True
    status, _, body = client.request(
        "POST", "/query", {"user": victim, "k": 5, "alpha": 0.3}
    )
    assert status == 400
    assert body["error"]["type"] == "unlocated_user"
    with pytest.raises(ValueError, match="no known location"):
        reference.query(QueryRequest(victim, k=5, alpha=0.3))


def test_subscription_snapshot_matches_query(handle, client, reference, engine):
    """The SSE ``snapshot`` event carries the same result a one-shot
    query returns, and a ``delta`` reconstructs the new top-k exactly."""
    located = sorted(engine.locations.located_users())
    # moving the subscribed user themselves guarantees their standing
    # query changes (an arbitrary user may not be in their top-k)
    user = located[2]
    mover = user
    events: list = []
    done = threading.Event()

    def consume() -> None:
        with ServerClient(handle.host, handle.port) as tail_client:
            for item in tail_client.tail(user, k=8, alpha=0.3, timeout=30):
                events.append(item)
                if item[0] == "delta":
                    break
        done.set()

    thread = threading.Thread(target=consume)
    thread.start()
    # wait for the snapshot event before mutating
    for _ in range(200):
        if events:
            break
        threading.Event().wait(0.02)
    assert events and events[0][0] == "snapshot"
    snapshot = events[0][1]
    assert snapshot["result"] == expected_result(reference, user, k=8, alpha=0.3)
    # drive deltas until the standing query actually changes
    rng_positions = [(0.01, 0.01), (0.99, 0.99), (0.5, 0.5), (0.02, 0.03)]
    for x, y in rng_positions:
        client.move(mover, x, y)
        if done.wait(timeout=1.0):
            break
    assert done.wait(timeout=10), "no delta observed after repeated moves"
    thread.join(timeout=10)
    delta = events[-1][1]
    members = {nb["user"]: nb for nb in snapshot["result"]["neighbors"]}
    for user_id in delta["left"]:
        members.pop(user_id)
    for record in delta["entered"]:
        members[record["user"]] = record
    for record in delta["moved"]:
        members[record["user"]] = {
            key: record[key] for key in ("user", "score", "social", "spatial")
        }
    assert len(members) == delta["size"]
    current = expected_result(reference, user, k=8, alpha=0.3)
    reconstructed = sorted(nb["score"] for nb in members.values())
    assert reconstructed == [nb["score"] for nb in current["neighbors"]]
    assert max(reconstructed) == delta["fk"]


def test_stats_and_metrics_surface(client):
    stats = client.stats()
    for section in ("service", "cache", "server", "engine"):
        assert section in stats, f"missing /stats section {section!r}"
    assert stats["server"]["admitted"] >= 1
    assert stats["server"]["completed"] <= stats["server"]["admitted"]
    assert stats["engine"]["kind"] == "GeoSocialEngine"
    text = client.metrics()
    assert "# TYPE repro_service_requests gauge" in text
    assert "repro_server_admitted" in text
    for line in text.splitlines():
        assert line.startswith(("#", "repro_")), f"malformed metrics line: {line!r}"
    as_json = client.metrics(format="json")
    assert set(as_json) == set(stats)


def test_healthz(client):
    assert client.healthz() == {"status": "ok"}


def test_snapshot_restore_roundtrip(tmp_path):
    """Snapshot, diverge, restore: answers return to the snapshotted
    state bit-for-bit, through the HTTP path end to end."""
    dataset = build_dataset("server-restore", n=150, avg_degree=6.0, coverage=0.9, seed=3)
    engine = GeoSocialEngine.from_dataset(dataset, num_landmarks=4, s=5, seed=1)
    with QueryService(engine) as svc, ServerThread(svc, workers=2) as h:
        with ServerClient(h.host, h.port) as c:
            user = sorted(engine.locations.located_users())[0]
            mover = sorted(engine.locations.located_users())[-1]
            before = c.query(user, k=8, alpha=0.3)["result"]
            snap = c.snapshot(str(tmp_path / "snaps"))
            assert snap["ok"] is True and snap["name"].startswith("snapshot-")
            c.move(mover, 0.111, 0.222)
            diverged = c.query(user, k=8, alpha=0.3)["result"]
            restored = c.restore(str(tmp_path / "snaps"))
            assert restored["users"] == 150
            after = c.query(user, k=8, alpha=0.3)["result"]
            assert after == before
            # restore swapped a fresh engine into the service; it holds
            # the *snapshotted* location, not the diverged one
            assert svc.engine is not engine
            assert tuple(svc.engine.locations.get(mover) or ()) != (0.111, 0.222)
            assert diverged["k"] == before["k"]
