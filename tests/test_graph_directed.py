"""Directed-graph support across the graph substrate (paper Section 3:
"our work extends to directed graphs easily")."""

import math
import random

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.astar import alt_distance
from repro.graph.bidirectional import BidirectionalDistanceEngine, bidirectional_dijkstra
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import dijkstra_distances

INF = math.inf


def random_digraph(n: int, avg_out_degree: float, seed: int) -> SocialGraph:
    rng = random.Random(seed)
    target = int(n * avg_out_degree)
    edges = set()
    guard = 0
    while len(edges) < target and guard < 20 * target:
        guard += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return SocialGraph.from_edges(
        n, [(u, v, rng.uniform(0.05, 1.0)) for u, v in sorted(edges)], directed=True
    )


def to_networkx(g: SocialGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(range(g.n))
    for u, v, w in g.edges():
        nxg.add_edge(u, v, weight=w)
    return nxg


def test_directed_dijkstra_matches_networkx():
    g = random_digraph(60, 3.0, seed=1)
    expected = nx.single_source_dijkstra_path_length(to_networkx(g), 0)
    got = dijkstra_distances(g, 0)
    assert set(got) == set(expected)
    for v in expected:
        assert math.isclose(got[v], expected[v], abs_tol=1e-9)


def test_directed_landmark_lower_bound_valid():
    g = random_digraph(50, 3.0, seed=2)
    lm = LandmarkIndex.build(g, m=3, seed=2)
    for u in range(0, 50, 7):
        truth = dijkstra_distances(g, u)
        for v in range(50):
            lb = lm.lower_bound(u, v)
            assert lb <= truth.get(v, INF) + 1e-9, f"pair ({u}, {v})"


def test_directed_bound_is_asymmetric():
    """p(u, v) != p(v, u) in digraphs; the bounds must respect that."""
    g = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 10.0)], directed=True)
    lm = LandmarkIndex(g, [0])
    # p(0, 2) = 2, p(2, 0) = 10
    assert lm.lower_bound(0, 2) <= 2.0 + 1e-9
    assert lm.lower_bound(2, 0) <= 10.0 + 1e-9
    # The reverse-table bound p(u->l) - p(v->l) should see the asymmetry:
    # p(2->0)=10, p(0->0)=0 gives bound 10 for p(2, 0).
    assert lm.lower_bound(2, 0) == 10.0


def test_directed_alt_distance_matches_dijkstra():
    g = random_digraph(60, 3.0, seed=3)
    lm = LandmarkIndex.build(g, m=3, seed=3)
    truth = dijkstra_distances(g, 5)
    for t in range(0, 60, 5):
        assert math.isclose(
            alt_distance(g, 5, t, lm), truth.get(t, INF), abs_tol=1e-9
        ), f"target {t}"


def test_directed_bidirectional_dijkstra():
    g = random_digraph(60, 3.0, seed=4)
    truth = dijkstra_distances(g, 7)
    for t in range(0, 60, 6):
        assert math.isclose(
            bidirectional_dijkstra(g, 7, t), truth.get(t, INF), abs_tol=1e-9
        )


def test_directed_distance_engine():
    g = random_digraph(50, 3.0, seed=5)
    lm = LandmarkIndex.build(g, m=3, seed=5)
    engine = BidirectionalDistanceEngine(g, 2, lm)
    truth = dijkstra_distances(g, 2)
    for t in range(50):
        assert math.isclose(engine.distance(t), truth.get(t, INF), abs_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_directed_engine_and_bounds(seed):
    rng = random.Random(seed)
    n = rng.randint(3, 30)
    g = random_digraph(n, 2.5, seed=seed % 600)
    lm = LandmarkIndex.build(g, m=min(2, n), seed=seed % 7)
    source = rng.randrange(n)
    truth = dijkstra_distances(g, source)
    engine = BidirectionalDistanceEngine(g, source, lm)
    for _ in range(6):
        t = rng.randrange(n)
        expected = truth.get(t, INF)
        assert math.isclose(engine.distance(t), expected, abs_tol=1e-9)
        assert lm.lower_bound(source, t) <= expected + 1e-9
