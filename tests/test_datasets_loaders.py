"""Round-trip tests for the SNAP / check-in file loaders."""

import pytest

from repro.datasets.loaders import (
    load_checkins,
    load_edge_list,
    save_checkins,
    save_edge_list,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "edges.txt"
        edges = [(0, 1), (1, 2), (0, 3)]
        save_edge_list(path, edges)
        n, loaded = load_edge_list(path)
        assert n == 4
        assert loaded == sorted(edges)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n0\t1\n# mid comment\n1\t2\n")
        n, edges = load_edge_list(path)
        assert n == 3
        assert edges == [(0, 1), (1, 2)]

    def test_duplicates_and_orientation_normalised(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 0\n0 1\n")
        _, edges = load_edge_list(path)
        assert edges == [(0, 1)]

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("2 2\n0 1\n")
        _, edges = load_edge_list(path)
        assert edges == [(0, 1)]

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("7\n")
        with pytest.raises(ValueError):
            load_edge_list(path)


class TestCheckins:
    def test_most_frequent_location_wins(self, tmp_path):
        path = tmp_path / "checkins.txt"
        rows = [
            (0, "2010-10-19T23:55:27Z", 30.0, -97.0, 11),
            (0, "2010-10-20T23:55:27Z", 30.0, -97.0, 11),
            (0, "2010-10-21T23:55:27Z", 45.0, -120.0, 12),
        ]
        save_checkins(path, rows)
        table = load_checkins(path, n=2)
        # stored as (x, y) = (lon, lat)
        assert table.get(0) == (-97.0, 30.0)
        assert table.get(1) is None

    def test_frequency_tie_broken_deterministically(self, tmp_path):
        path = tmp_path / "checkins.txt"
        rows = [
            (0, "t1", 10.0, 10.0, 1),
            (0, "t2", 20.0, 20.0, 2),
        ]
        save_checkins(path, rows)
        table = load_checkins(path, n=1)
        assert table.get(0) == (10.0, 10.0)  # smaller (lat, lon) wins ties

    def test_out_of_range_users_ignored(self, tmp_path):
        path = tmp_path / "checkins.txt"
        save_checkins(path, [(99, "t", 1.0, 1.0, 5)])
        table = load_checkins(path, n=10)
        assert table.n_located == 0

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "checkins.txt"
        path.write_text("0\tonly-two\n")
        with pytest.raises(ValueError):
            load_checkins(path, n=1)
