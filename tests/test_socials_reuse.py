"""Cross-query social-distance reuse: the exactness differential suite.

The :class:`~repro.social.SocialColumnCache` is a pure performance
layer — every answer produced through a cached (full or resumed
partial) column must be **bit-identical** to the cold computation, for
every forward-deterministic method, at every alpha (endpoints
included), on both kernel backends, on single and sharded engines,
through engine rebuilds and interleaved location/edge updates.  The
poisoned-column canary additionally pins that cached columns are
*actually consulted* (reuse is observable) and that an edge update
*strictly* invalidates them while location moves never do — the
epoch-safety contract the whole design rests on.
"""

from __future__ import annotations

import math

import pytest

from repro.backend import resolve_backend
from repro.core.engine import FORWARD_DETERMINISTIC_METHODS, GeoSocialEngine
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import DijkstraIterator
from repro.service import QueryRequest, QueryService
from repro.shard import ShardedGeoSocialEngine
from repro.social import (
    DEFAULT_SOCIAL_CACHE_BYTES,
    ReplayedDijkstra,
    SocialColumnCache,
)
from repro.stream import SubscriptionRegistry
from tests.conftest import random_instance

INF = math.inf

METHODS = ("bruteforce", "sfa", "spa", "tsa", "tsa-plain", "tsa-qc")
ALPHAS = (0.0, 0.3, 0.5, 1.0)
SHARD_COUNTS = (1, 4)

BACKENDS = ["python"]
try:  # numpy leg runs wherever the vectorized backend is available
    import numpy  # noqa: F401

    BACKENDS.append("numpy")
except ImportError:  # pragma: no cover - numpy is a test dependency in CI
    pass


def fingerprint(result):
    """Exact (user, score, social, spatial) tuples — bit-identity, not
    tolerance-based equality."""
    return [(nb.user, nb.score, nb.social, nb.spatial) for nb in result.neighbors]


def build_engine(n_shards: int, backend: str, cache_bytes: "int | None", *,
                 n: int = 130, seed: int = 13, coverage: float = 0.85):
    graph, locations = random_instance(n, seed=seed, coverage=coverage)
    if locations.n_located == 0:
        locations.set(0, 0.5, 0.5)
    if n_shards == 1:
        return GeoSocialEngine(
            graph, locations, num_landmarks=3, s=4, seed=5, backend=backend,
            social_cache_bytes=cache_bytes,
        )
    return ShardedGeoSocialEngine(
        graph, locations, n_shards=n_shards, num_landmarks=3, s=4, seed=5,
        max_workers=1, backend=backend, scatter_backend="inline",
        social_cache_bytes=cache_bytes,
    )


def query_users(engine, count: int = 3):
    located = sorted(engine.locations.located_users())
    return located[:: max(1, len(located) // count)][:count]


# -- warm == cold, everywhere ------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_cached_results_bit_identical_to_cold(backend, n_shards):
    """Three passes over methods x alphas x users: pass 0 populates the
    cache, passes 1-2 answer from full columns — every result must be
    bit-identical to a cache-disabled engine's."""
    warm = build_engine(n_shards, backend, None)
    cold = build_engine(n_shards, backend, 0)
    users = query_users(warm)
    for rep in range(3):
        for user in users:
            for method in METHODS:
                for alpha in ALPHAS:
                    got = warm.query(user, k=7, alpha=alpha, method=method)
                    ref = cold.query(user, k=7, alpha=alpha, method=method)
                    assert fingerprint(got) == fingerprint(ref), (
                        f"rep={rep} user={user} {method}@{alpha} "
                        f"backend={backend} shards={n_shards}"
                    )
    cache = warm.social_cache
    assert cache is not None
    info = cache.info()
    assert info["hits"] > 0, "warm passes never hit the cache"


@pytest.mark.parametrize("backend", BACKENDS)
def test_partial_resume_paths_bit_identical(backend):
    """Early-terminating searchers park partial expansions; the next
    query resumes them.  Seed a partial via each early-terminating
    method first, then drive every method through the resumed column."""
    for seed_method, seed_alpha in (("sfa", 1.0), ("spa", 0.3), ("tsa", 0.5)):
        warm = build_engine(1, backend, None)
        cold = build_engine(1, backend, 0)
        user = query_users(warm)[0]
        warm.query(user, k=3, alpha=seed_alpha, method=seed_method)
        info = warm.social_cache.info()
        assert info["entries"] == 1
        for method in METHODS:
            for alpha in ALPHAS:
                got = warm.query(user, k=7, alpha=alpha, method=method)
                ref = cold.query(user, k=7, alpha=alpha, method=method)
                assert fingerprint(got) == fingerprint(ref), (
                    f"seed={seed_method}@{seed_alpha} then {method}@{alpha}"
                )
        assert warm.social_cache.info()["resumes"] >= 1


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_interleaved_moves_and_edge_updates_stay_exact(n_shards):
    """Queries interleaved with location moves (which must NOT touch the
    column cache) and service-applied edge updates (which MUST flush it)
    stay bit-identical to a cold engine driven through the identical
    update sequence."""
    warm = build_engine(n_shards, "python", None)
    cold = build_engine(n_shards, "python", 0)
    warm_service = QueryService(warm, cache_size=0)
    cold_service = QueryService(cold, cache_size=0)
    try:
        users = query_users(warm)
        probe = [(u, m, a) for u in users for m, a in
                 (("sfa", 1.0), ("spa", 0.3), ("tsa", 0.5), ("bruteforce", 0.0))]

        def check(tag):
            for u, m, a in probe:
                got = warm_service.query(QueryRequest(user=u, k=6, alpha=a, method=m))
                ref = cold_service.query(QueryRequest(user=u, k=6, alpha=a, method=m))
                assert fingerprint(got.result) == fingerprint(ref.result), (
                    f"{tag}: user={u} {m}@{a} shards={n_shards}"
                )

        check("initial")
        for service in (warm_service, cold_service):
            service.move_user(users[0], 0.11, 0.93)
            service.move_user(users[1], 0.77, 0.04)
        check("after moves")
        assert warm.social_cache.info()["invalidations"] == 0  # moves never flush
        for service in (warm_service, cold_service):
            service.update_edge(users[0], users[2], 0.07)
        assert warm.social_cache.info()["invalidations"] >= 1  # edges always do
        check("after edge update")
        warm_new = warm_service.rebuild_engine()
        cold_new = cold_service.rebuild_engine()
        assert warm_new.social_cache is not None
        assert warm_new.social_cache is not warm.social_cache  # never crosses rebuild
        assert len(warm_new.social_cache) == 0
        assert cold_new.social_cache is None
        check("after rebuild")
    finally:
        warm_service.close()
        cold_service.close()


# -- the poisoned-column canary ----------------------------------------


def test_poisoned_column_canary():
    """Deliberately corrupt a cached column in place and observe the
    corruption in served results — proving columns are genuinely
    consulted — then pin the invalidation semantics: a location move
    leaves the poison in place, an edge update flushes it."""
    engine = build_engine(1, "python", None)
    service = QueryService(engine, cache_size=0)
    try:
        cold = build_engine(1, "python", 0)
        user = query_users(engine)[0]
        baseline = fingerprint(engine.query(user, k=5, alpha=1.0, method="sfa"))
        # bruteforce at a social-bearing alpha caches the full column
        engine.query(user, k=5, alpha=0.5, method="bruteforce")
        column = engine.social_cache.peek_full(user)
        assert column is not None
        victim = max(
            v for v in range(engine.graph.n)
            if v != user and 0.0 < column[v] < INF
        )
        column[victim] = 0.0  # the poison: an impossible exact distance

        poisoned = engine.query(user, k=5, alpha=1.0, method="sfa")
        assert poisoned.users[0] == victim, "cached column was not consulted"
        assert poisoned.neighbors[0].social == 0.0
        assert fingerprint(poisoned) != baseline

        # Location moves must NOT invalidate: the poison stays visible.
        service.move_user(victim, 0.42, 0.42)
        service.move_user(user, 0.13, 0.87)
        still = engine.query(user, k=5, alpha=1.0, method="sfa")
        assert still.users[0] == victim, "a location move flushed the column cache"

        # An edge update MUST invalidate: the poison is gone and the
        # answer matches the cold engine again (the engine's indexed
        # graph is unchanged until rebuild, so cold == baseline ranking).
        service.update_edge(user, victim, 0.5)
        healed = engine.query(user, k=5, alpha=1.0, method="sfa")
        ref = cold.query(user, k=5, alpha=1.0, method="sfa")
        assert fingerprint(healed) == fingerprint(ref)
        assert healed.users[0] != victim or ref.users[0] == victim
    finally:
        service.close()


# -- fused same-user batches -------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_fused_query_many_matches_sequential_engine_queries(backend):
    """Distinct (k, alpha) variants for one user fuse into one columnar
    pass; every response must be bit-identical to a sequential
    engine.query loop on a cache-disabled engine."""
    engine = build_engine(1, backend, None)
    cold = build_engine(1, backend, 0)
    service = QueryService(engine, max_workers=2, cache_size=0)
    try:
        u1, u2, u3 = query_users(engine)
        batch = []
        for user in (u1, u1, u2, u3):
            for k, alpha, method in (
                (5, 0.3, "spa"), (7, 0.5, "tsa"), (3, 1.0, "sfa"),
                (4, 0.0, "spa"), (6, 0.4, "bruteforce"), (5, 0.25, "tsa-plain"),
            ):
                batch.append(QueryRequest(user=user, k=k, alpha=alpha, method=method))
        responses = service.query_many(batch)
        fused = 0
        for req, resp in zip(batch, responses):
            ref = cold.query(req.user, k=req.k, alpha=req.alpha, method=req.method)
            assert fingerprint(resp.result) == fingerprint(ref), req
            fused += 1 if resp.result.stats.extra.get("fused_group", 0) > 1 else 0
        assert fused > 0, "no request took the fused path"
        assert sum(1 for r in responses if r.deduplicated) > 0
    finally:
        service.close()


def test_fusion_skips_planner_and_unlocated_spatial_requests():
    """method='auto' requests keep the per-query path (the planner must
    observe real latencies), and SPA/TSA for an unlocated user raise
    the searcher's exact error even inside a fusable batch."""
    engine = build_engine(1, "python", None)
    service = QueryService(engine, max_workers=1, cache_size=0)
    try:
        unlocated = next(
            (u for u in range(engine.graph.n) if engine.locations.get(u) is None),
            None,
        )
        assert unlocated is not None
        with pytest.raises(ValueError, match="no known location"):
            service.query_many(
                [
                    QueryRequest(user=unlocated, k=3, alpha=0.5, method="tsa"),
                    QueryRequest(user=unlocated, k=5, alpha=0.5, method="tsa"),
                ]
            )
        # method="auto" groups never fuse: the planner must observe
        # real per-query latencies to keep learning
        located = query_users(engine)[0]
        for resp in service.query_many(
            [
                QueryRequest(user=located, k=3, alpha=0.5, method="auto"),
                QueryRequest(user=located, k=4, alpha=0.5, method="auto"),
            ]
        ):
            assert "fused_group" not in resp.result.stats.extra
        # unlocated + social-only methods fuse fine (all-inf spatial)
        responses = service.query_many(
            [
                QueryRequest(user=unlocated, k=3, alpha=1.0, method="sfa"),
                QueryRequest(user=unlocated, k=5, alpha=0.4, method="bruteforce"),
            ]
        )
        cold = build_engine(1, "python", 0)
        assert fingerprint(responses[0].result) == fingerprint(
            cold.query(unlocated, k=3, alpha=1.0, method="sfa")
        )
        assert fingerprint(responses[1].result) == fingerprint(
            cold.query(unlocated, k=5, alpha=0.4, method="bruteforce")
        )
    finally:
        service.close()


# -- stream repair reuse -----------------------------------------------


def test_stream_repair_consults_cached_columns_exactly():
    """Entrant evaluation during REPAIR reads a cached full column when
    one exists; maintained results must stay identical to a stack with
    the cache disabled under the same update sequence."""
    stacks = {}
    for tag, cache_bytes in (("warm", None), ("cold", 0)):
        engine = build_engine(1, "python", cache_bytes, n=90, seed=29, coverage=0.9)
        service = QueryService(engine, cache_size=0)
        registry = SubscriptionRegistry(service)
        stacks[tag] = (engine, service, registry)
    try:
        user = query_users(stacks["warm"][0])[0]
        # cache the full column on the warm side only
        stacks["warm"][0].query(user, k=5, alpha=0.5, method="bruteforce")
        hits_before = stacks["warm"][0].social_cache.info()["hits"]
        subs = {
            tag: registry.subscribe(user, k=5, alpha=0.5, method="spa")
            for tag, (_e, _s, registry) in stacks.items()
        }
        qx, qy = stacks["warm"][0].locations.get(user)
        movers = [
            v for v in query_users(stacks["warm"][0], count=6) if v != user
        ][:3]
        for i, mover in enumerate(movers):
            for _engine, service, _registry in stacks.values():
                service.move_user(mover, qx + 1e-4 * (i + 1), qy)
            results = {}
            for tag, (_e, _s, registry) in stacks.items():
                registry.flush()
                results[tag] = registry.result(subs[tag])
            assert fingerprint(results["warm"]) == fingerprint(results["cold"]), (
                f"repair diverged after moving {mover}"
            )
        assert stacks["warm"][0].social_cache.info()["hits"] > hits_before, (
            "repair pass never consulted the cached column"
        )
    finally:
        for _engine, service, registry in stacks.values():
            registry.close()
            service.close()


# -- sharded coordinator bypass ----------------------------------------


def test_sharded_coordinator_column_scan_counted_and_exact():
    sharded = build_engine(4, "python", None)
    cold = build_engine(4, "python", 0)
    user = query_users(sharded)[0]
    first = sharded.query(user, k=6, alpha=0.5, method="tsa")
    assert sharded.scatter.column_scans == 0  # cold: full scatter
    # the delegated full scan completes the expansion -> full column
    sharded.query(user, k=6, alpha=0.5, method="bruteforce")
    second = sharded.query(user, k=6, alpha=0.5, method="tsa")
    assert sharded.scatter.column_scans >= 1  # warm: coordinator scan
    assert second.stats.extra.get("column_scan") == 1
    ref = cold.query(user, k=6, alpha=0.5, method="tsa")
    assert fingerprint(first) == fingerprint(second) == fingerprint(ref)
    assert "column_scans" in sharded.scatter_info()


# -- cache unit behaviour ----------------------------------------------


class TestSocialColumnCache:
    def _graph(self, n=6):
        return SocialGraph.from_edges(
            n, [(i, i + 1, 1.0) for i in range(n - 1)]
        )

    def _kernels(self):
        return resolve_backend("python")

    def test_partial_checkout_is_exclusive(self):
        g = self._graph()
        cache = SocialColumnCache(g.n, self._kernels())
        it = DijkstraIterator(g, 0)
        it.next()
        cache.checkin(0, it)
        kind, payload = cache.acquire(0)
        assert kind == "partial" and payload is it
        assert cache.acquire(0) == (None, None)  # checked out: gone
        assert cache.stats.resumes == 1 and cache.stats.misses == 1

    def test_checkin_keeps_larger_settled_radius(self):
        g = self._graph()
        cache = SocialColumnCache(g.n, self._kernels())
        small = DijkstraIterator(g, 0)
        small.next()
        large = DijkstraIterator(g, 0)
        large.next()
        large.next()
        large.next()
        cache.checkin(0, large)
        cache.checkin(0, small)  # racing smaller radius: discarded
        kind, payload = cache.acquire(0)
        assert kind == "partial" and payload is large

    def test_exhausted_checkin_promotes_to_full_column(self):
        g = self._graph()
        cache = SocialColumnCache(g.n, self._kernels())
        it = DijkstraIterator(g, 0)
        it.run_to_completion()
        cache.checkin(0, it)
        kind, column = cache.acquire(0)
        assert kind == "full"
        assert list(column) == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert cache.stats.promotions == 1
        info = cache.info()
        assert info["columns"] == 1 and info["partials"] == 0

    def test_byte_budget_evicts_lru_first(self):
        g = self._graph()
        kernels = self._kernels()
        column_bytes = g.n * 8
        cache = SocialColumnCache(g.n, kernels, max_bytes=2 * column_bytes)
        cache.store_full(0, kernels.dense_from_dict(g.n, {0: 0.0}, INF))
        cache.store_full(1, kernels.dense_from_dict(g.n, {1: 0.0}, INF))
        assert cache.bytes_used == 2 * column_bytes
        cache.acquire(0)  # touch 0: 1 becomes LRU
        cache.store_full(2, kernels.dense_from_dict(g.n, {2: 0.0}, INF))
        assert cache.stats.evictions == 1
        assert cache.contains_full(0) and cache.contains_full(2)
        assert not cache.contains_full(1)
        assert cache.bytes_used <= cache.max_bytes

    def test_oversized_entry_is_refused_not_thrashed(self):
        g = self._graph()
        kernels = self._kernels()
        cache = SocialColumnCache(g.n, kernels, max_bytes=g.n * 8 - 1)
        cache.store_full(0, kernels.dense_from_dict(g.n, {}, INF))
        assert len(cache) == 0 and cache.stats.evictions == 0

    def test_resize_shrinks_and_zero_disables(self):
        g = self._graph()
        kernels = self._kernels()
        cache = SocialColumnCache(g.n, kernels)
        for u in range(3):
            cache.store_full(u, kernels.dense_from_dict(g.n, {u: 0.0}, INF))
        cache.resize(g.n * 8)  # room for exactly one column
        assert len(cache) == 1 and cache.bytes_used == g.n * 8
        cache.resize(0)
        assert len(cache) == 0 and not cache.enabled
        assert cache.acquire(0) == (None, None)
        cache.checkin(0, DijkstraIterator(g, 0))  # no-op while disabled
        assert len(cache) == 0
        with pytest.raises(ValueError):
            cache.resize(-1)

    def test_invalidate_all_counts_and_empties(self):
        g = self._graph()
        kernels = self._kernels()
        cache = SocialColumnCache(g.n, kernels)
        cache.store_full(0, kernels.dense_from_dict(g.n, {}, INF))
        cache.invalidate_all()
        assert len(cache) == 0 and cache.bytes_used == 0
        assert cache.stats.invalidations == 1

    def test_contains_full_probe_perturbs_nothing(self):
        g = self._graph()
        kernels = self._kernels()
        cache = SocialColumnCache(g.n, kernels, max_bytes=2 * g.n * 8)
        cache.store_full(0, kernels.dense_from_dict(g.n, {}, INF))
        cache.store_full(1, kernels.dense_from_dict(g.n, {}, INF))
        before = cache.info()
        assert cache.contains_full(0) and not cache.contains_full(5)
        assert cache.info() == before  # no stats, no LRU touch
        cache.store_full(2, kernels.dense_from_dict(g.n, {}, INF))
        assert not cache.contains_full(0)  # 0 stayed LRU: evicted first


class TestReplayedDijkstra:
    def test_replay_prefix_then_live_matches_fresh_stream(self):
        g = SocialGraph.from_edges(5, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        parked = DijkstraIterator(g, 0)
        parked.next()
        parked.next()
        replayed = ReplayedDijkstra(parked)
        fresh = DijkstraIterator(g, 0)
        stream = []
        while True:
            item = replayed.next()
            if item is None:
                break
            stream.append(item)
            assert fresh.next() == item
        assert fresh.next() is None
        assert [v for v, _d in stream] == [0, 1, 2, 3]
        assert replayed.exhausted
        assert replayed.settled == fresh.settled
        assert list(replayed.settled) == list(fresh.settled)

    def test_replay_pops_count_only_live_work(self):
        g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        parked = DijkstraIterator(g, 0)
        parked.next()
        parked.next()
        pops_parked = parked.heap.pops
        replayed = ReplayedDijkstra(parked)
        before = replayed.heap.pops
        assert before == pops_parked  # delta accounting baseline
        replayed.next()  # replay: no heap work
        replayed.next()
        assert replayed.heap.pops == before
        replayed.next()  # live
        assert replayed.heap.pops > before

    def test_last_distance_tracks_replayed_then_live(self):
        g = SocialGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 2.0)])
        parked = DijkstraIterator(g, 0)
        parked.next()
        parked.next()
        replayed = ReplayedDijkstra(parked)
        replayed.next()
        assert replayed.last_distance == 0.0
        replayed.next()
        assert replayed.last_distance == 1.0
        replayed.next()
        assert replayed.last_distance == 3.0


# -- service / engine plumbing -----------------------------------------


def test_engine_cache_budget_knobs():
    engine = build_engine(1, "python", None)
    assert engine.social_cache.max_bytes == DEFAULT_SOCIAL_CACHE_BYTES
    assert build_engine(1, "python", 0).social_cache is None
    sized = build_engine(1, "python", 4096)
    assert sized.social_cache.max_bytes == 4096
    rebuilt = sized.with_graph(sized.graph)
    assert rebuilt.social_cache is not sized.social_cache
    assert rebuilt.social_cache.max_bytes == 4096


def test_service_social_cache_bytes_resizes_live_cache():
    engine = build_engine(1, "python", None)
    service = QueryService(engine, cache_size=0, social_cache_bytes=8192)
    try:
        assert engine.social_cache.max_bytes == 8192
        user = query_users(engine)[0]
        service.query(QueryRequest(user=user, k=4, alpha=1.0, method="sfa"))
        info = service.cache_info()
        assert info["social"]["max_bytes"] == 8192
        assert info["social"]["entries"] >= 1
        service.update_edge(user, (user + 1) % engine.graph.n, 0.3)
        new_engine = service.rebuild_engine()
        # the budget knob survives the swap, the entries do not
        assert new_engine.social_cache.max_bytes == 8192
        assert len(new_engine.social_cache) == 0
    finally:
        service.close()


def test_shards_share_one_cache_instance():
    sharded = build_engine(4, "python", None)
    assert sharded.social_cache is not None
    for shard in sharded._engines.values():
        assert shard.social_cache is sharded.social_cache
    disabled = build_engine(4, "python", 0)
    assert disabled.social_cache is None
    for shard in disabled._engines.values():
        assert shard.social_cache is None


def test_planner_social_hit_feature_probes_without_perturbing():
    from repro.plan.features import extract_features

    engine = build_engine(1, "python", None)
    user = query_users(engine)[0]
    assert extract_features(engine, user, 10, 0.5).social_hit is False
    engine.query(user, k=5, alpha=0.5, method="bruteforce")
    before = engine.social_cache.info()
    features = extract_features(engine, user, 10, 0.5)
    assert features.social_hit is True
    assert engine.social_cache.info() == before
    assert features.bucket()[-1] == 1
