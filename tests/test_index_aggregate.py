"""Tests for the aggregate index: construction, bound validity, and
update maintenance vs. full rebuild."""

import math
import random

import pytest

from repro.graph.landmarks import LandmarkIndex
from repro.graph.traversal import dijkstra_distances
from repro.index.aggregate import AggregateIndex
from repro.index.bounds import social_lower_bound
from tests.conftest import random_graph, random_locations

INF = math.inf


@pytest.fixture()
def setup():
    g = random_graph(120, 5.0, seed=101)
    locations = random_locations(120, seed=102, coverage=0.8)
    lm = LandmarkIndex.build(g, m=3, seed=5)
    index = AggregateIndex.build(locations, lm, s=4)
    return g, locations, lm, index


def summaries_equal(a: AggregateIndex, b: AggregateIndex) -> bool:
    if set(a.leaf_summaries) != set(b.leaf_summaries):
        return False
    if set(a.top_summaries) != set(b.top_summaries):
        return False
    for key, summary in a.leaf_summaries.items():
        if summary != b.leaf_summaries[key]:
            return False
    for key, summary in a.top_summaries.items():
        if summary != b.top_summaries[key]:
            return False
    return True


class TestBuild:
    def test_indexes_only_located_users(self, setup):
        _, locations, _, index = setup
        assert len(index) == locations.n_located

    def test_leaf_summaries_bracket_members(self, setup):
        _, _, lm, index = setup
        for leaf, summary in index.leaf_summaries.items():
            for user in index.users_in(leaf):
                vec = lm.vector(user)
                for j in range(lm.m):
                    assert summary.m_check[j] <= vec[j] <= summary.m_hat[j]

    def test_top_summaries_cover_children(self, setup):
        _, _, _, index = setup
        for top, summary in index.top_summaries.items():
            for leaf in index.grid.children_of(top):
                child = index.leaf_summaries[leaf]
                for j in range(len(summary.m_check)):
                    assert summary.m_check[j] <= child.m_check[j]
                    assert summary.m_hat[j] >= child.m_hat[j]

    def test_cell_social_bound_valid_for_members(self, setup):
        g, _, lm, index = setup
        query = 0
        truth = dijkstra_distances(g, query)
        qv = lm.vector(query)
        for leaf, summary in index.leaf_summaries.items():
            bound = social_lower_bound(qv, summary.m_check, summary.m_hat)
            for user in index.users_in(leaf):
                assert bound <= truth.get(user, INF) + 1e-9


class TestUpdates:
    def rebuild(self, locations, lm, index, s=4):
        """Fresh index over the current locations, reusing the original
        bounding box (updates never re-derive the grid geometry)."""
        from repro.spatial.multigrid import MultiLevelGrid

        grid = MultiLevelGrid(index.grid.bbox, s)
        for user in locations.located_users():
            x, y = locations.get(user)
            grid.insert(user, x, y)
        return AggregateIndex(grid, lm, locations)

    def test_move_between_cells_matches_rebuild(self, setup):
        _, locations, lm, index = setup
        user = next(locations.located_users())
        locations.set(user, 0.987, 0.013)
        index.move_user(user, 0.987, 0.013)
        assert summaries_equal(index, self.rebuild(locations, lm, index))

    def test_move_within_cell_is_noop(self, setup):
        _, locations, lm, index = setup
        user = next(locations.located_users())
        x, y = locations.get(user)
        leaf = index.grid.leaf_of(x, y)
        box = index.grid.leaf_bbox(leaf)
        nx = (box.minx + box.maxx) / 2
        ny = (box.miny + box.maxy) / 2
        locations.set(user, nx, ny)
        index.move_user(user, nx, ny)
        assert index.grid.leaf_of_user(user) == leaf
        assert summaries_equal(index, self.rebuild(locations, lm, index))

    def test_insert_previously_unlocated(self, setup):
        _, locations, lm, index = setup
        user = next(u for u in range(120) if not locations.has_location(u))
        locations.set(user, 0.5, 0.5)
        index.insert_user(user, 0.5, 0.5)
        assert summaries_equal(index, self.rebuild(locations, lm, index))

    def test_remove_user(self, setup):
        _, locations, lm, index = setup
        user = next(locations.located_users())
        index.remove_user(user)
        locations.clear(user)
        assert summaries_equal(index, self.rebuild(locations, lm, index))

    def test_remove_unindexed_raises(self, setup):
        _, locations, _, index = setup
        user = next(u for u in range(120) if not locations.has_location(u))
        with pytest.raises(KeyError):
            index.remove_user(user)

    def test_random_update_storm_matches_rebuild(self, setup):
        _, locations, lm, index = setup
        rng = random.Random(7)
        for _ in range(120):
            user = rng.randrange(120)
            action = rng.random()
            if action < 0.7:
                x, y = rng.random(), rng.random()
                locations.set(user, x, y)
                index.move_user(user, x, y)
            elif locations.has_location(user):
                index.remove_user(user)
                locations.clear(user)
        assert summaries_equal(index, self.rebuild(locations, lm, index))

    def test_empty_cell_summaries_are_dropped(self, setup):
        _, locations, lm, index = setup
        # Move every user into one corner cell: all other summaries gone.
        for user in list(locations.located_users()):
            locations.set(user, 0.001, 0.001)
            index.move_user(user, 0.001, 0.001)
        assert len(index.leaf_summaries) == 1
        assert len(index.top_summaries) == 1
        assert summaries_equal(index, self.rebuild(locations, lm, index))


class TestSpatialMindist:
    def test_in_box_query_uses_bbox(self, setup):
        _, _, _, index = setup
        leaf, _, bbox = next(iter(index.children(index.grid.nonempty_tops()[0])))
        assert index.spatial_mindist(bbox, leaf, False, 0.5, 0.5) == bbox.mindist(0.5, 0.5)

    def test_out_of_box_query_borders_bound_zero(self, setup):
        _, _, _, index = setup
        res = index.grid.s * index.grid.s
        border_leaf = (0, 0)
        bbox = index.grid.leaf_bbox(border_leaf)
        assert index.spatial_mindist(bbox, border_leaf, False, -10.0, -10.0) == 0.0
