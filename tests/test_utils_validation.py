"""``repro.utils.validation`` — the argument guards shared across the
public API (engine, service, shard, dataset builders).  Each helper
must reject exactly the invalid domain, accept the boundary, and
return the validated value so call sites can validate inline."""

from __future__ import annotations

import math

import pytest

from repro.utils.validation import (
    check_alpha,
    check_positive,
    check_probability,
    check_user,
)


class TestCheckAlpha:
    @pytest.mark.parametrize("alpha", [0.0, 0.5, 1.0, 0, 1])
    def test_accepts_unit_interval_and_returns_float(self, alpha):
        out = check_alpha(alpha)
        assert out == alpha
        assert isinstance(out, float)

    @pytest.mark.parametrize("alpha", [-0.001, 1.001, -1, 2, math.inf, -math.inf])
    def test_rejects_outside_unit_interval(self, alpha):
        with pytest.raises(ValueError, match=r"alpha must be in \[0, 1\]"):
            check_alpha(alpha)

    def test_rejects_nan(self):
        # NaN fails every comparison, so the containment check must too
        with pytest.raises(ValueError):
            check_alpha(math.nan)


class TestCheckPositive:
    @pytest.mark.parametrize("value", [1e-12, 1, 2.5, math.inf])
    def test_accepts_positive_and_returns_value(self, value):
        assert check_positive("t", value) == value

    @pytest.mark.parametrize("value", [0, 0.0, -1, -math.inf])
    def test_rejects_zero_and_negative(self, value):
        with pytest.raises(ValueError, match="t must be positive"):
            check_positive("t", value)

    def test_error_names_the_parameter(self):
        with pytest.raises(ValueError, match="num_landmarks"):
            check_positive("num_landmarks", -3)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.25, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("coverage", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, math.nan])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError, match="coverage"):
            check_probability("coverage", value)


class TestCheckUser:
    @pytest.mark.parametrize("user", [0, 5, 99])
    def test_accepts_in_range(self, user):
        assert check_user(user, 100) == user

    @pytest.mark.parametrize("user", [-1, 100, 1000])
    def test_rejects_out_of_range(self, user):
        with pytest.raises(ValueError, match=r"out of range \[0, 100\)"):
            check_user(user, 100)

    def test_empty_population_rejects_everything(self):
        with pytest.raises(ValueError):
            check_user(0, 0)
