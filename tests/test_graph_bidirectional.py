"""Tests for the bidirectional distance engine (Algorithm 3)."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bidirectional import (
    BidirectionalDistanceEngine,
    bidirectional_dijkstra,
)
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.graph.traversal import dijkstra_distances
from tests.conftest import random_graph

INF = math.inf


class TestBidirectionalDijkstra:
    def test_matches_unidirectional(self):
        g = random_graph(80, 5.0, seed=41)
        truth = dijkstra_distances(g, 0)
        for t in range(0, 80, 7):
            assert math.isclose(
                bidirectional_dijkstra(g, 0, t), truth.get(t, INF), abs_tol=1e-9
            )

    def test_same_vertex(self):
        g = random_graph(10, 3.0, seed=42)
        assert bidirectional_dijkstra(g, 2, 2) == 0.0

    def test_unreachable(self):
        g = SocialGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert bidirectional_dijkstra(g, 0, 3) == INF

    def test_directed(self):
        g = SocialGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)], directed=True)
        assert bidirectional_dijkstra(g, 0, 2) == 2.0
        assert bidirectional_dijkstra(g, 2, 0) == INF


class TestEngine:
    def _check_engine(self, engine, g, source):
        truth = dijkstra_distances(g, source)
        for t in range(g.n):
            assert math.isclose(
                engine.distance(t), truth.get(t, INF), abs_tol=1e-9
            ), f"target {t}"

    def test_shared_engine_all_targets(self):
        g = random_graph(60, 4.0, seed=43)
        lm = LandmarkIndex.build(g, m=4, seed=4)
        engine = BidirectionalDistanceEngine(g, 0, lm)
        self._check_engine(engine, g, 0)

    def test_fresh_engine_all_targets(self):
        g = random_graph(60, 4.0, seed=44)
        lm = LandmarkIndex.build(g, m=4, seed=4)
        engine = BidirectionalDistanceEngine(
            g, 5, lm, share_forward=False, cache_paths=False
        )
        self._check_engine(engine, g, 5)

    def test_no_landmarks(self):
        g = random_graph(40, 4.0, seed=45)
        engine = BidirectionalDistanceEngine(g, 1, landmarks=None)
        self._check_engine(engine, g, 1)

    def test_distance_caching_hits(self):
        g = random_graph(60, 4.0, seed=46)
        lm = LandmarkIndex.build(g, m=4, seed=4)
        engine = BidirectionalDistanceEngine(g, 0, lm)
        truth = dijkstra_distances(g, 0)
        targets = [t for t in range(1, 20) if t in truth]  # reachable only
        for t in targets:
            engine.distance(t)
        calls_before = engine.cache_hits
        for t in targets:
            engine.distance(t)  # all answered from caches now
        assert engine.cache_hits >= calls_before + len(targets)

    def test_repeated_queries_return_same_value(self):
        g = random_graph(50, 4.0, seed=47)
        lm = LandmarkIndex.build(g, m=3, seed=2)
        engine = BidirectionalDistanceEngine(g, 3, lm)
        truth = dijkstra_distances(g, 3)
        first = [engine.distance(t) for t in range(50)]
        second = [engine.distance(t) for t in range(50)]
        # Both passes must agree with the truth; the second pass may be
        # served from a cache whose arithmetic differs in the last ulp.
        for t, (a, b) in enumerate(zip(first, second)):
            expected = truth.get(t, INF)
            assert math.isclose(a, expected, abs_tol=1e-9) or a == expected == INF
            assert math.isclose(b, expected, abs_tol=1e-9) or b == expected == INF

    def test_beta_monotone_nondecreasing(self):
        g = random_graph(60, 4.0, seed=48)
        lm = LandmarkIndex.build(g, m=3, seed=2)
        engine = BidirectionalDistanceEngine(g, 0, lm)
        prev = 0.0
        rng = random.Random(1)
        for _ in range(30):
            engine.distance(rng.randrange(60))
            assert engine.beta >= prev
            prev = engine.beta

    def test_beta_lower_bounds_unsettled_vertices(self):
        g = random_graph(60, 4.0, seed=49)
        lm = LandmarkIndex.build(g, m=3, seed=2)
        engine = BidirectionalDistanceEngine(g, 0, lm)
        truth = dijkstra_distances(g, 0)
        rng = random.Random(2)
        for _ in range(20):
            engine.distance(rng.randrange(60))
            beta = engine.beta
            for v in range(60):
                if engine.forward is not None and v not in engine.forward.settled:
                    assert truth.get(v, INF) >= beta - 1e-9

    def test_known_distance_only_from_caches(self):
        g = random_graph(30, 4.0, seed=50)
        lm = LandmarkIndex.build(g, m=2, seed=1)
        engine = BidirectionalDistanceEngine(g, 0, lm)
        # Before any call, only the source is potentially known.
        unknown = [v for v in range(1, 30) if engine.known_distance(v) is not None]
        assert unknown == []

    def test_path_cache_distances_are_exact(self):
        g = random_graph(70, 4.0, seed=51)
        lm = LandmarkIndex.build(g, m=4, seed=3)
        engine = BidirectionalDistanceEngine(g, 0, lm)
        truth = dijkstra_distances(g, 0)
        for t in range(0, 70, 3):
            engine.distance(t)
        for v, d in engine.path_cache.items():
            assert math.isclose(d, truth[v], abs_tol=1e-9)

    def test_unreachable_target(self):
        g = SocialGraph.from_edges(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        lm = LandmarkIndex(g, [0, 2])
        engine = BidirectionalDistanceEngine(g, 0, lm)
        assert engine.distance(4) == INF
        assert engine.distance(1) == 1.0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.booleans())
def test_property_engine_equals_dijkstra(seed, shared):
    rng = random.Random(seed)
    n = rng.randint(3, 35)
    g = random_graph(n, 3.5, seed=seed % 555)
    lm = LandmarkIndex.build(g, m=min(3, n), seed=seed % 5)
    source = rng.randrange(n)
    engine = BidirectionalDistanceEngine(
        g, source, lm, share_forward=shared, cache_paths=shared
    )
    truth = dijkstra_distances(g, source)
    targets = [rng.randrange(n) for _ in range(min(10, n))]
    for t in targets:
        assert math.isclose(engine.distance(t), truth.get(t, INF), abs_tol=1e-9)
