"""Unit and property tests for geometry primitives and LocationTable."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.point import BBox, LocationTable, euclidean

INF = math.inf

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestEuclidean:
    def test_known_distance(self):
        assert euclidean(0, 0, 3, 4) == 5.0

    def test_zero_distance(self):
        assert euclidean(1.5, -2.0, 1.5, -2.0) == 0.0

    @given(coords, coords, coords, coords)
    def test_symmetry(self, ax, ay, bx, by):
        assert euclidean(ax, ay, bx, by) == euclidean(bx, by, ax, ay)

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        ab = euclidean(ax, ay, bx, by)
        bc = euclidean(bx, by, cx, cy)
        ac = euclidean(ax, ay, cx, cy)
        assert ac <= ab + bc + 1e-9


class TestBBox:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BBox(1, 0, 0, 1)

    def test_diagonal(self):
        assert BBox(0, 0, 3, 4).diagonal == 5.0

    def test_mindist_inside_is_zero(self):
        assert BBox(0, 0, 1, 1).mindist(0.5, 0.5) == 0.0

    def test_mindist_axis_projection(self):
        # Directly left of the box: horizontal projection.
        assert BBox(1, 0, 2, 1).mindist(0.0, 0.5) == 1.0

    def test_mindist_corner(self):
        assert BBox(1, 1, 2, 2).mindist(0.0, 0.0) == pytest.approx(math.sqrt(2))

    def test_maxdist_reaches_far_corner(self):
        assert BBox(0, 0, 1, 1).maxdist(0.0, 0.0) == pytest.approx(math.sqrt(2))

    @given(coords, coords)
    def test_mindist_below_maxdist(self, x, y):
        box = BBox(-1, -2, 3, 4)
        assert box.mindist(x, y) <= box.maxdist(x, y) + 1e-9

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=20))
    def test_of_points_contains_all(self, points):
        box = BBox.of_points(points)
        for x, y in points:
            assert box.contains(x, y)

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.of_points([])

    @given(st.lists(st.tuples(coords, coords), min_size=2, max_size=15))
    def test_diagonal_bounds_pairwise_distances(self, points):
        box = BBox.of_points(points)
        for ax, ay in points:
            for bx, by in points:
                assert euclidean(ax, ay, bx, by) <= box.diagonal + 1e-9


class TestLocationTable:
    def test_empty_has_no_locations(self):
        table = LocationTable.empty(5)
        assert table.n_located == 0
        assert table.coverage == 0.0
        assert table.get(3) is None

    def test_set_and_get(self):
        table = LocationTable.empty(3)
        table.set(1, 0.5, 0.25)
        assert table.get(1) == (0.5, 0.25)
        assert table.n_located == 1

    def test_distance_known_pair(self):
        table = LocationTable.empty(2)
        table.set(0, 0.0, 0.0)
        table.set(1, 3.0, 4.0)
        assert table.distance(0, 1) == 5.0

    def test_distance_missing_is_infinite(self):
        table = LocationTable.empty(2)
        table.set(0, 0.0, 0.0)
        assert table.distance(0, 1) == INF
        assert table.distance(1, 0) == INF

    def test_set_nan_rejected(self):
        table = LocationTable.empty(1)
        with pytest.raises(ValueError):
            table.set(0, math.nan, 0.0)

    def test_clear_forgets(self):
        table = LocationTable.empty(1)
        table.set(0, 1.0, 1.0)
        table.clear(0)
        assert table.get(0) is None
        assert table.n_located == 0

    def test_overwrite_does_not_double_count(self):
        table = LocationTable.empty(1)
        table.set(0, 1.0, 1.0)
        table.set(0, 2.0, 2.0)
        assert table.n_located == 1
        assert table.get(0) == (2.0, 2.0)

    def test_located_users_in_id_order(self):
        table = LocationTable.empty(4)
        table.set(2, 0.1, 0.1)
        table.set(0, 0.2, 0.2)
        assert list(table.located_users()) == [0, 2]

    def test_from_dict(self):
        table = LocationTable.from_dict(3, {1: (0.5, 0.5)})
        assert table.get(1) == (0.5, 0.5)
        assert table.get(0) is None

    def test_bbox_over_known_locations(self):
        table = LocationTable.empty(3)
        table.set(0, 0.0, 0.0)
        table.set(1, 2.0, 3.0)
        box = table.bbox()
        assert (box.minx, box.miny, box.maxx, box.maxy) == (0.0, 0.0, 2.0, 3.0)

    def test_copy_is_independent(self):
        table = LocationTable.empty(1)
        table.set(0, 1.0, 1.0)
        clone = table.copy()
        clone.set(0, 9.0, 9.0)
        assert table.get(0) == (1.0, 1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            LocationTable.from_columns([0.0], [0.0, 1.0])

    def test_distance_to_point(self):
        table = LocationTable.empty(2)
        table.set(0, 0.0, 0.0)
        assert table.distance_to(0, 3.0, 4.0) == 5.0
        assert table.distance_to(1, 0.0, 0.0) == INF
