"""Admission control, deadlines and drain — real sockets, real
concurrency.

The suite wraps the service in a ``SlowService`` whose query paths
sleep before delegating, so queue occupancy is controllable, and then
asserts the serving disciplines the server promises:

- overflow is shed **immediately** with ``429`` + ``Retry-After``,
  never by hanging or dropping;
- every **admitted** request runs to a correct ``200`` response —
  admission is a completion guarantee;
- deadlines fire: a client whose budget elapses gets ``504`` while the
  server keeps its accounting straight, and a job whose deadline passes
  while still queued is answered ``504`` *without executing at all*;
- malformed input of every kind maps to typed ``4xx`` bodies, not
  connection resets or 500s;
- a graceful drain completes in-flight work, ends subscription streams
  with a final ``end`` event, and refuses new connections.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import GeoSocialEngine, QueryService
from repro.datasets.synthetic import build_dataset
from repro.server import ServerClient, ServerThread
from repro.service.model import QueryRequest, result_payload


class SlowService(QueryService):
    """A service whose query paths sleep first — the knob that lets the
    tests hold the admission queue at a chosen occupancy."""

    def __init__(self, engine, *, delay: float, **kwargs) -> None:
        super().__init__(engine, **kwargs)
        self.delay = delay
        self._call_lock = threading.Lock()
        self.query_calls = 0

    def query(self, request, **kwargs):
        with self._call_lock:
            self.query_calls += 1
        time.sleep(self.delay)
        return super().query(request, **kwargs)

    def query_many(self, requests, **kwargs):
        with self._call_lock:
            self.query_calls += len(list(requests))
        time.sleep(self.delay)
        return super().query_many(requests, **kwargs)


@pytest.fixture(scope="module")
def engine() -> GeoSocialEngine:
    dataset = build_dataset("server-bp", n=200, avg_degree=6.0, coverage=0.9, seed=5)
    return GeoSocialEngine.from_dataset(dataset, num_landmarks=4, s=5, seed=1)


@pytest.fixture(scope="module")
def query_user(engine) -> int:
    return sorted(engine.locations.located_users())[0]


@pytest.fixture(scope="module")
def expected(engine, query_user) -> dict:
    with QueryService(engine, cache_size=0) as reference:
        return result_payload(
            reference.query(QueryRequest(query_user, k=5, alpha=0.3)).result
        )


def _storm(handle, query_user, count: int, *, deadline_ms=None):
    """Fire ``count`` simultaneous queries; returns the per-thread
    ``(status, headers, body)`` triples — one per request, always."""
    barrier = threading.Barrier(count)
    outcomes: "list[tuple[int, dict, object] | None]" = [None] * count

    def worker(slot: int) -> None:
        headers = {"X-Deadline-Ms": str(deadline_ms)} if deadline_ms else None
        with ServerClient(handle.host, handle.port) as client:
            barrier.wait(timeout=10)
            outcomes[slot] = client.request(
                "POST",
                "/query",
                {"user": query_user, "k": 5, "alpha": 0.3},
                headers=headers,
            )

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert all(outcome is not None for outcome in outcomes), "a request hung or died"
    return outcomes


def test_overflow_sheds_and_admitted_complete(engine, query_user, expected):
    """The core backpressure contract, asserted across a 12-request
    storm against a queue of 2 with one slow worker: a mix of 200s and
    429s, correct 200 bodies, Retry-After on every 429, and the
    admitted == completed identity afterwards."""
    service = SlowService(engine, delay=0.15, cache_size=0)
    with service, ServerThread(
        service, queue_depth=2, workers=1, max_batch=1, retry_after_s=2.0
    ) as handle:
        outcomes = _storm(handle, query_user, 12)
        statuses = [status for status, _, _ in outcomes]
        assert set(statuses) <= {200, 429}, statuses
        assert 200 in statuses and 429 in statuses, statuses
        for status, headers, body in outcomes:
            if status == 200:
                assert body["result"] == expected
            else:
                assert body["error"]["type"] == "overloaded"
                assert int(headers["Retry-After"]) >= 2
        with ServerClient(handle.host, handle.port) as client:
            stats = client.stats()["server"]
        shed, admitted = statuses.count(429), statuses.count(200)
        # +1 admitted for the /stats request itself? no — /stats is
        # served inline, not through the admission queue
        assert stats["shed"] == shed
        assert stats["admitted"] == admitted
        assert stats["completed"] == admitted
        assert stats["in_flight"] == 0


def test_shed_connection_stays_usable(engine, query_user, expected):
    """A 429 is a response, not a punishment: the same keep-alive
    connection serves a normal query once the storm passes."""
    service = SlowService(engine, delay=0.2, cache_size=0)
    with service, ServerThread(
        service, queue_depth=1, workers=1, max_batch=1
    ) as handle:
        client = ServerClient(handle.host, handle.port)
        shed_status = None
        stop = threading.Event()

        def hammer() -> None:
            with ServerClient(handle.host, handle.port) as other:
                while not stop.is_set():
                    other.request("POST", "/query", {"user": query_user, "k": 5})

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, _, _ = client.request(
                    "POST", "/query", {"user": query_user, "k": 5, "alpha": 0.3}
                )
                if status == 429:
                    shed_status = status
                    break
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert shed_status == 429, "storm never filled the queue"
        payload = client.query(query_user, k=5, alpha=0.3)
        assert payload["result"] == expected
        client.close()


def test_deadline_fires_mid_execution(engine, query_user):
    """A client budget shorter than the execution time yields 504; the
    admitted job still completes server-side (completed == admitted)."""
    service = SlowService(engine, delay=0.5, cache_size=0)
    with service, ServerThread(service, queue_depth=4, workers=1) as handle:
        with ServerClient(handle.host, handle.port) as client:
            started = time.monotonic()
            status, _, body = client.request(
                "POST",
                "/query",
                {"user": query_user, "k": 5},
                headers={"X-Deadline-Ms": "100"},
            )
            elapsed = time.monotonic() - started
            assert status == 504
            assert body["error"]["type"] == "deadline_exceeded"
            assert elapsed < 0.45, "504 must not wait for the slow execution"
            # the same connection keeps working after a 504
            payload = client.query(query_user, k=5, alpha=0.3)
            assert payload["result"]["query_user"] == query_user
            for _ in range(100):  # the abandoned job drains server-side
                stats = client.stats()["server"]
                if stats["completed"] == stats["admitted"]:
                    break
                time.sleep(0.02)
            assert stats["completed"] == stats["admitted"]
            assert stats["deadline_timeouts"] >= 1


def test_queued_job_expires_without_executing(engine, query_user):
    """A job whose deadline passes while it is still *queued* is
    answered 504 and never reaches the service at all."""
    service = SlowService(engine, delay=0.4, cache_size=0)
    with service, ServerThread(
        service, queue_depth=4, workers=1, max_batch=1
    ) as handle:
        results: dict = {}

        def occupant() -> None:
            with ServerClient(handle.host, handle.port) as client:
                results["occupant"] = client.request(
                    "POST", "/query", {"user": query_user, "k": 5}
                )

        thread = threading.Thread(target=occupant)
        thread.start()
        time.sleep(0.1)  # let the occupant reach the worker
        with ServerClient(handle.host, handle.port) as client:
            status, _, body = client.request(
                "POST",
                "/query",
                {"user": query_user, "k": 5},
                headers={"X-Deadline-Ms": "50"},
            )
        thread.join(timeout=30)
        assert status == 504 and body["error"]["type"] == "deadline_exceeded"
        assert results["occupant"][0] == 200
        # exactly one query reached the service: the occupant
        assert service.query_calls == 1


def test_malformed_requests_get_typed_400s(engine, query_user):
    service = SlowService(engine, delay=0.0, cache_size=0)
    with service, ServerThread(service) as handle:
        cases = [
            ({"k": 5}, "invalid_argument"),                  # missing user
            ({"user": "zero"}, "invalid_argument"),          # non-int user
            ({"user": query_user, "k": 0}, "invalid_argument"),
            ({"user": query_user, "alpha": 2.0}, "invalid_argument"),
            ({"user": query_user, "method": "warp"}, "invalid_argument"),
            ({"user": 10**9}, "unknown_user"),
        ]
        with ServerClient(handle.host, handle.port) as client:
            for body, expected_type in cases:
                status, _, payload = client.request("POST", "/query", body)
                assert status == 400, (body, status, payload)
                assert payload["error"]["type"] == expected_type, (body, payload)
            # malformed deadline header
            status, _, payload = client.request(
                "POST",
                "/query",
                {"user": query_user},
                headers={"X-Deadline-Ms": "soon"},
            )
            assert (status, payload["error"]["type"]) == (400, "invalid_argument")
            # wrong method / unknown path
            status, _, payload = client.request("GET", "/query")
            assert (status, payload["error"]["type"]) == (405, "method_not_allowed")
            status, _, payload = client.request("POST", "/nope", {})
            assert (status, payload["error"]["type"]) == (404, "not_found")
            # batch without requests
            status, _, payload = client.request("POST", "/query/batch", {"k": 3})
            assert (status, payload["error"]["type"]) == (400, "invalid_argument")
            # 4xx never increments the server-error counter
            assert client.stats()["server"]["server_errors"] == 0


def test_malformed_framing_gets_400_and_close(engine):
    """Raw-socket abuse: garbage framing, non-JSON bodies and chunked
    request bodies are answered with a typed 400, then the connection
    is closed (the stream position is untrustworthy)."""
    service = SlowService(engine, delay=0.0, cache_size=0)
    with service, ServerThread(service) as handle:
        raw_cases = [
            b"THIS IS NOT HTTP\r\n\r\n",
            (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 7\r\n\r\nnotjson"
            ),
            (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 6\r\n\r\n[1, 2]"
            ),
            (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
            ),
            (
                b"POST /query HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: banana\r\n\r\n"
            ),
        ]
        for raw in raw_cases:
            with socket.create_connection(
                (handle.host, handle.port), timeout=10
            ) as sock:
                sock.sendall(raw)
                response = b""
                while b"\r\n\r\n" not in response:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    response += chunk
                assert response.startswith(b"HTTP/1.1 400 "), (raw, response[:80])
                assert b"Connection: close" in response


def test_graceful_drain(engine, query_user, expected):
    """stop(): in-flight requests finish with correct 200s, the SSE
    stream ends with an ``end`` event, new connections are refused."""
    service = SlowService(engine, delay=0.3, cache_size=0)
    handle = ServerThread(
        service, queue_depth=8, workers=2, max_batch=1, heartbeat_s=0.2
    )
    with service:
        handle.start()
        outcomes: "list[tuple[int, object]]" = []
        lock = threading.Lock()

        def slow_query() -> None:
            with ServerClient(handle.host, handle.port) as client:
                status, _, body = client.request(
                    "POST", "/query", {"user": query_user, "k": 5, "alpha": 0.3}
                )
            with lock:
                outcomes.append((status, body))

        tail_events: list = []

        def tail() -> None:
            with ServerClient(handle.host, handle.port) as client:
                for event, payload in client.tail(query_user, k=5, timeout=30):
                    tail_events.append((event, payload))

        tail_thread = threading.Thread(target=tail)
        tail_thread.start()
        time.sleep(0.15)  # stream open, snapshot delivered
        query_threads = [threading.Thread(target=slow_query) for _ in range(3)]
        for t in query_threads:
            t.start()
        time.sleep(0.1)  # all three admitted (queue_depth=8)
        handle.stop()  # drain: must not strand the in-flight queries
        for t in query_threads:
            t.join(timeout=30)
        tail_thread.join(timeout=30)
        assert [status for status, _ in outcomes] == [200, 200, 200]
        for _, body in outcomes:
            assert body["result"] == expected
        assert tail_events and tail_events[0][0] == "snapshot"
        assert tail_events[-1] == ("end", {"reason": "drain"})
        with pytest.raises(OSError):
            socket.create_connection((handle.host, handle.port), timeout=2)


def test_drain_snapshot_root(engine, tmp_path):
    """A configured ``drain_snapshot_root`` produces a committed
    snapshot as the last act of a graceful stop."""
    root = tmp_path / "drain-snaps"
    service = SlowService(engine, delay=0.0, cache_size=0)
    with service:
        with ServerThread(service, drain_snapshot_root=str(root)) as handle:
            with ServerClient(handle.host, handle.port) as client:
                assert client.healthz() == {"status": "ok"}
        manager = service.snapshots(str(root))
        assert manager.latest() is not None
