"""Tests for the calibrated dataset builders (Table 2 stand-ins)."""

import pytest

from repro.datasets.synthetic import (
    build_dataset,
    correlated_dataset,
    forest_fire_series,
    foursquare_like,
    gowalla_like,
    twitter_like,
)


class TestCalibration:
    def test_gowalla_like_matches_table2(self):
        ds = gowalla_like(n=3000, seed=1)
        stats = ds.stats()
        assert 8.5 <= stats["avg_degree"] <= 11.0  # paper: 9.7
        assert abs(stats["coverage"] - 0.544) < 0.02
        assert stats["V"] == 3000

    def test_foursquare_like_matches_table2(self):
        ds = foursquare_like(n=3000, seed=2)
        stats = ds.stats()
        assert 8.5 <= stats["avg_degree"] <= 11.0  # paper: 9.5
        assert abs(stats["coverage"] - 0.603) < 0.02

    def test_twitter_like_high_degree_full_coverage(self):
        ds = twitter_like(n=1500, seed=3)
        stats = ds.stats()
        assert stats["avg_degree"] >= 45  # paper: 57.7
        assert stats["coverage"] == 1.0

    def test_stats_fields(self):
        ds = build_dataset("x", n=500, avg_degree=6.0, coverage=0.8, seed=4)
        stats = ds.stats()
        assert set(stats) == {"name", "V", "E", "locations", "avg_degree", "coverage"}
        assert stats["locations"] == ds.locations.n_located

    def test_deterministic(self):
        a = gowalla_like(n=400, seed=5)
        b = gowalla_like(n=400, seed=5)
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert all(
            x == y or (x != x and y != y)  # NaN pairs (unlocated) count as equal
            for x, y in zip(a.locations.xs, b.locations.xs)
        )


class TestCorrelatedDataset:
    @pytest.mark.parametrize("kind", ["positive", "independent", "negative"])
    def test_builds_with_anchor(self, kind):
        ds, anchor = correlated_dataset(kind, n=400, seed=6)
        assert ds.locations.has_location(anchor)
        assert ds.graph.n == 400

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            correlated_dataset("sideways", n=100)

    def test_same_graph_across_kinds(self):
        pos, _ = correlated_dataset("positive", n=300, seed=7)
        neg, _ = correlated_dataset("negative", n=300, seed=7)
        assert sorted(pos.graph.edges()) == sorted(neg.graph.edges())


class TestForestFireSeries:
    def test_sizes_and_locations_carried(self):
        base = build_dataset("base", n=600, avg_degree=6.0, coverage=0.7, seed=8)
        series = forest_fire_series(base, [100, 250, 600], seed=9)
        assert [ds.graph.n for ds in series] == [100, 250, 600]
        # Full-size sample is the base itself.
        assert series[2].graph is base.graph
        for ds in series[:2]:
            assert 0 < ds.locations.n_located <= ds.graph.n

    def test_oversized_rejected(self):
        base = build_dataset("base", n=100, avg_degree=5.0, seed=10)
        with pytest.raises(ValueError):
            forest_fire_series(base, [200])
