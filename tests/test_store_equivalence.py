"""Round-trip equivalence: ``load(save(engine))`` answers every query
bit-identically to the live engine.

The store's correctness contract is stronger than "approximately the
same results": the persisted columns are the exact arrays the engine
computes from, the manifest round-trips the exact normalization
constants through JSON (Python floats survive json exactly), and the
loaded engine rebuilds its indexes from the *same* cell arrays the
live engine maintains — so ids, scores, and tie-breaks must all match
with ``==``, across backends × shard counts × methods (including the
cost-based ``auto`` route), through a save→load→save cycle (the
second snapshot is byte-identical), and through an
update-fold-then-snapshot cycle on the service.

Property tests run under the suite's fixed, derandomized profile.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import GeoSocialEngine, ShardedGeoSocialEngine, gowalla_like
from repro.service import QueryService
from repro.store import MANIFEST_NAME, load_engine
from tests.conftest import random_instance

pytest.importorskip("numpy", reason="the columnar store persists .npy columns")

settings.register_profile(
    "store-ci",
    max_examples=12,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
STORE_CI = settings.get_profile("store-ci")

#: every searcher family plus the adaptive router — all of them are
#: forward-deterministic, so restored rankings must be exact
METHODS = ("sfa", "spa", "tsa", "tsa-qc", "ais", "bruteforce", "auto")
ALPHAS = (0.0, 0.3, 1.0)
BACKENDS = ("python", "numpy")
SHARD_COUNTS = (1, 4)


def build_engine(backend, n_shards, n=140, seed=13):
    dataset = gowalla_like(n=n, seed=seed)
    if n_shards == 1:
        return GeoSocialEngine.from_dataset(
            dataset, num_landmarks=3, s=3, seed=2, backend=backend
        )
    return ShardedGeoSocialEngine.from_dataset(
        dataset,
        n_shards=n_shards,
        max_workers=1,
        num_landmarks=3,
        seed=2,
        backend=backend,
    )


def assert_bit_identical(live, loaded, users, k=6, methods=METHODS, alphas=ALPHAS):
    for user in users:
        for method in methods:
            for alpha in alphas:
                a = live.query(user=user, k=k, alpha=alpha, method=method)
                b = loaded.query(user=user, k=k, alpha=alpha, method=method)
                ids_a = [nb.user for nb in a]
                ids_b = [nb.user for nb in b]
                context = f"user={user} method={method} alpha={alpha}"
                assert ids_a == ids_b, f"{context}: ids {ids_a} != {ids_b}"
                scores_a = [nb.score for nb in a]
                scores_b = [nb.score for nb in b]
                assert scores_a == scores_b, (
                    f"{context}: scores differ: {scores_a} != {scores_b}"
                )


def located_sample(engine, count=3):
    return sorted(engine.locations.located_users())[:count]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_roundtrip_bit_identical(tmp_path, backend, n_shards):
    live = build_engine(backend, n_shards)
    live.save(tmp_path / "snap")
    loaded = load_engine(tmp_path / "snap")
    assert type(loaded) is type(live)
    assert loaded.backend == live.backend
    assert loaded.graph.n == live.graph.n
    assert loaded.normalization == live.normalization
    assert_bit_identical(live, loaded, located_sample(live))


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_mmap_and_eager_loads_agree(tmp_path, n_shards):
    live = build_engine("numpy", n_shards, n=100)
    live.save(tmp_path / "snap")
    warm = load_engine(tmp_path / "snap", mmap=True)
    cold = load_engine(tmp_path / "snap", mmap=False, verify=False)
    assert_bit_identical(warm, cold, located_sample(live), methods=("ais", "auto"))


def test_save_load_save_is_byte_stable(tmp_path):
    """Persisting a loaded engine reproduces the identical columns —
    nothing drifts through a snapshot generation."""
    live = build_engine("numpy", 1, n=100)
    live.save(tmp_path / "a")
    load_engine(tmp_path / "a").save(tmp_path / "b")
    manifest_a = json.loads((tmp_path / "a" / MANIFEST_NAME).read_text())
    manifest_b = json.loads((tmp_path / "b" / MANIFEST_NAME).read_text())
    assert manifest_a["columns"] == manifest_b["columns"]
    assert manifest_a["config"] == manifest_b["config"]


def test_loaded_engine_serves_typed_class_loaders(tmp_path):
    single = build_engine("numpy", 1, n=80)
    sharded = build_engine("numpy", 4, n=80)
    single.save(tmp_path / "single")
    sharded.save(tmp_path / "sharded")
    assert isinstance(GeoSocialEngine.load(tmp_path / "single"), GeoSocialEngine)
    assert isinstance(
        ShardedGeoSocialEngine.load(tmp_path / "sharded"), ShardedGeoSocialEngine
    )
    with pytest.raises(TypeError):
        GeoSocialEngine.load(tmp_path / "sharded")
    with pytest.raises(TypeError):
        ShardedGeoSocialEngine.load(tmp_path / "single")


def test_loaded_engine_stays_mutable_without_touching_snapshot(tmp_path):
    """Copy-on-write mmap: updates to a warm-started engine never leak
    back into the snapshot another process may be reading."""
    live = build_engine("numpy", 1, n=100)
    live.save(tmp_path / "snap")
    first = GeoSocialEngine.load(tmp_path / "snap")
    user = located_sample(first, 1)[0]
    first.move_user(user, 0.111, 0.222)
    second = GeoSocialEngine.load(tmp_path / "snap")
    assert second.locations.get(user) == live.locations.get(user)
    assert second.locations.get(user) != first.locations.get(user)
    assert_bit_identical(live, second, located_sample(live))


def test_update_fold_then_snapshot_cycle(tmp_path):
    """Batched edge updates fold into the snapshot through the same
    rebuild path the serving layer uses; the restored engine answers
    exactly like the live post-fold engine."""
    engine = build_engine("numpy", 1)
    with QueryService(engine) as service:
        manager = service.snapshots(tmp_path / "snaps")
        manager.snapshot()
        users = located_sample(service.engine)
        u, v = users[0], users[1]
        service.update_edge(u, v, 0.123)
        service.move_user(u, 0.321, 0.654)
        assert service.pending_edge_updates == 1
        path = manager.snapshot()  # folds, then persists
        assert service.pending_edge_updates == 0
        live = service.engine
        assert live.graph.edge_weight(u, v) == 0.123
        loaded = load_engine(path)
        assert loaded.graph.edge_weight(u, v) == 0.123
        assert loaded.locations.get(u) == (0.321, 0.654)
        assert_bit_identical(live, loaded, users)
        # restore swaps the loaded engine into the service
        restored = manager.restore()
        assert service.engine is restored
        after = [nb.user for nb in restored.query(user=u, k=5, alpha=0.3)]
        before = [nb.user for nb in live.query(user=u, k=5, alpha=0.3)]
        assert after == before


@settings(parent=STORE_CI)
@given(
    n=st.integers(min_value=12, max_value=60),
    seed=st.integers(min_value=0, max_value=10_000),
    coverage=st.floats(min_value=0.4, max_value=1.0),
    alpha=st.sampled_from((0.0, 0.17, 0.3123, 0.5, 0.83, 1.0)),
    k=st.integers(min_value=1, max_value=8),
)
def test_roundtrip_property(tmp_path_factory, n, seed, coverage, alpha, k):
    graph, locations = random_instance(n, seed=seed, coverage=coverage)
    if locations.n_located == 0:
        locations.set(0, 0.5, 0.5)
    live = GeoSocialEngine(
        graph, locations, num_landmarks=3, s=3, seed=3, backend="numpy"
    )
    path = tmp_path_factory.mktemp("store") / "snap"
    live.save(path)
    loaded = load_engine(path)
    users = sorted(live.locations.located_users())[:2]
    for user in users:
        for method in ("ais", "tsa", "auto"):
            a = live.query(user=user, k=k, alpha=alpha, method=method)
            b = loaded.query(user=user, k=k, alpha=alpha, method=method)
            assert [nb.user for nb in a] == [nb.user for nb in b]
            assert [nb.score for nb in a] == [nb.score for nb in b]
