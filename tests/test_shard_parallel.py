"""Warm process-pool suite: delta shipping, replicas, crash respawn.

The :class:`~repro.shard.ProcessScatterPool` contract under test:

- the pool stays **warm across update epochs** — location updates ship
  as journal deltas over the task pipes instead of killing the fork
  pool, and results stay bit-identical to the inline scatter;
- it re-forks only when replay is provably worse than fork (journal
  truncation, delta budget);
- a worker killed mid-batch is respawned from the *current* post-delta
  engine state and the batch result is unchanged;
- construction on spawn-only platforms raises before any
  multiprocessing context is built, and ``close()`` is idempotent and
  safe against concurrent respawn;
- read replicas answer identically to unreplicated workers;
- ``method="auto"`` resolved at the coordinator feeds the planner from
  process-backed scatter too.

Everything here needs the ``fork`` start method (skipped otherwise) —
but none of it needs more than one core: exactness and lifecycle are
schedule-independent, only the speedup (benchmarks) is not.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.core.engine import GeoSocialEngine
from repro.shard import (
    DeltaJournal,
    LocationDelta,
    PoolClosedError,
    ProcessScatterPool,
    ShardedGeoSocialEngine,
    resolve_scatter_backend,
)
from tests.conftest import random_instance

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process scatter pool requires the fork start method",
)


def build_engines(n=80, seed=11, n_shards=4, **kwargs):
    """A (single, sharded-inline) pair sharing one dataset."""
    graph, locations = random_instance(n, seed=seed, coverage=0.9)
    single = GeoSocialEngine(graph, locations.copy(), num_landmarks=2, s=3, seed=1)
    sharded = ShardedGeoSocialEngine(
        graph,
        locations.copy(),
        n_shards=n_shards,
        num_landmarks=2,
        s=3,
        seed=1,
        max_workers=1,
        scatter_backend="inline",
        **kwargs,
    )
    return single, sharded


def assert_matches_inline(pool, sharded, users, k=5, alpha=0.3, method="ais"):
    got = pool.query_many(users, k=k, alpha=alpha, method=method)
    want = [sharded.query(u, k=k, alpha=alpha, method=method) for u in users]
    assert [r.users for r in got] == [r.users for r in want]
    assert [r.scores for r in got] == [r.scores for r in want]
    return got


# -- delta shipping ----------------------------------------------------


def test_warm_pool_survives_update_epochs_without_reforking():
    """The tentpole invariant: a stream of location updates rides the
    delta journal to the live workers — zero re-forks — and every
    post-update batch is bit-identical to the inline scatter."""
    single, sharded = build_engines()
    users = list(sharded.located_users())[:8]
    with ProcessScatterPool(sharded, processes=2) as pool:
        pool.warm_up()
        forks_after_warmup = pool.info()["forks"]
        for round_ in range(4):
            # interleave same-shard moves, boundary crossings, forgets
            sharded.move_user(users[0], 0.01 + round_ * 0.2, 0.5)
            single.move_user(users[0], 0.01 + round_ * 0.2, 0.5)
            sharded.move_user(users[1], 0.9, 0.9)
            single.move_user(users[1], 0.9, 0.9)
            if round_ == 2:
                sharded.forget_location(users[2])
                single.forget_location(users[2])
            batch = [u for u in users if sharded.locations.has_location(u)]
            got = pool.query_many(batch, k=5, alpha=0.3)
            want = [single.query(u, k=5, alpha=0.3) for u in batch]
            assert [r.users for r in got] == [r.users for r in want]
        info = pool.info()
        assert info["forks"] == forks_after_warmup
        assert info["reforks"] == 0
        assert info["cold_refork_rounds"] == 0
        assert info["deltas_shipped"] > 0
    single.close()
    sharded.close()


def test_delta_budget_exceeded_triggers_refork():
    _, sharded = build_engines()
    users = list(sharded.located_users())[:4]
    with ProcessScatterPool(sharded, processes=2, delta_budget=2) as pool:
        pool.warm_up()
        for i in range(5):  # 5 deltas > budget of 2
            sharded.move_user(users[0], 0.1 + 0.1 * i, 0.4)
        assert_matches_inline(pool, sharded, users)
        info = pool.info()
        assert info["reforks"] == info["groups"] * info["replicas"]
        assert info["cold_refork_rounds"] == 1
    sharded.close()


def test_journal_truncation_triggers_refork():
    _, sharded = build_engines(journal_capacity=2)
    users = list(sharded.located_users())[:4]
    with ProcessScatterPool(sharded, processes=2) as pool:
        pool.warm_up()
        for i in range(4):  # 4 deltas overflow the 2-slot ring
            sharded.move_user(users[0], 0.1 + 0.1 * i, 0.4)
        assert_matches_inline(pool, sharded, users)
        assert pool.info()["reforks"] > 0
    sharded.close()


def test_replay_delta_mirrors_coordinator_transitions():
    """Worker-side replay (location set/clear, ownership, pinned index
    maintenance) reproduces move_user/forget_location transitions."""
    _, sharded = build_engines()
    twin = ShardedGeoSocialEngine(
        sharded.graph,
        sharded.locations.copy(),
        partitioner=sharded.partitioner,
        num_landmarks=2,
        s=3,
        seed=1,
        max_workers=1,
        scatter_backend="inline",
    )
    users = list(sharded.located_users())[:3]
    epoch_before = sharded.update_epoch
    sharded.move_user(users[0], 0.95, 0.95)   # likely boundary crossing
    sharded.move_user(users[1], *sharded.locations.get(users[1]))  # same spot
    sharded.forget_location(users[2])
    records = sharded._journal.since(epoch_before)
    for delta in records:
        twin._replay_delta(delta, pinned=None)
    assert twin.update_epoch == sharded.update_epoch
    assert twin._owner == sharded._owner
    probe = users[0]
    assert (
        twin.query(probe, k=5, alpha=0.3).users
        == sharded.query(probe, k=5, alpha=0.3).users
    )
    twin.close()
    sharded.close()


# -- crash resilience --------------------------------------------------


def kill_one_worker(pool):
    with pool._state_lock:
        worker = next(iter(pool._workers.values()))
    os.kill(worker.process.pid, signal.SIGKILL)
    worker.process.join(timeout=5)
    return worker


def test_killed_worker_respawns_with_post_delta_state():
    """The respawned replacement re-runs the initializer over the
    *current* engine — updates applied after the original fork are
    visible without any extra delta shipping."""
    single, sharded = build_engines()
    users = list(sharded.located_users())[:6]
    with ProcessScatterPool(sharded, processes=2) as pool:
        pool.warm_up()
        # update AFTER the fork, THEN kill: the replacement must see it
        sharded.move_user(users[0], 0.88, 0.12)
        single.move_user(users[0], 0.88, 0.12)
        kill_one_worker(pool)
        got = pool.query_many(users, k=5, alpha=0.3)
        want = [single.query(u, k=5, alpha=0.3) for u in users]
        assert [r.users for r in got] == [r.users for r in want]
        assert pool.info()["respawns"] >= 1
    single.close()
    sharded.close()


def test_kill_mid_batch_keeps_results_bit_identical():
    """A worker SIGKILLed while it holds in-flight tasks is detected by
    its sentinel, drained, respawned, and its lost tasks re-dispatched
    — the batch completes bit-identical to the inline scatter."""
    single, sharded = build_engines(n=120, seed=5)
    users = list(sharded.located_users())[:20]
    with ProcessScatterPool(sharded, processes=2) as pool:
        pool.warm_up()
        with pool._state_lock:
            victim = next(iter(pool._workers.values()))

        def assassin():
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if victim.inflight:
                    os.kill(victim.process.pid, signal.SIGKILL)
                    return
                time.sleep(0.0005)

        killer = threading.Thread(target=assassin)
        killer.start()
        try:
            got = pool.query_many(users, k=5, alpha=0.3)
        finally:
            killer.join()
        want = [single.query(u, k=5, alpha=0.3) for u in users]
        assert [r.users for r in got] == [r.users for r in want]
        assert [r.scores for r in got] == [r.scores for r in want]
    single.close()
    sharded.close()


def test_worker_task_error_propagates():
    _, sharded = build_engines()
    unlocated = [
        u for u in range(sharded.graph.n) if not sharded.locations.has_location(u)
    ]
    assert unlocated
    with ProcessScatterPool(sharded, processes=2) as pool:
        # An unlocated query user never reaches the workers: the
        # coordinator mirrors the single engine's inline error exactly.
        with pytest.raises(ValueError):
            pool.query_many([unlocated[0]], k=5, alpha=0.3, method="spa")


# -- lifecycle ---------------------------------------------------------


def test_spawn_only_platform_raises_before_building_context(monkeypatch):
    """The documented failure mode on spawn-only platforms must fire
    before any multiprocessing context exists."""
    _, sharded = build_engines(n=40)
    monkeypatch.setattr(
        multiprocessing, "get_all_start_methods", lambda: ["spawn"]
    )

    def forbidden(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("get_context must not be called on spawn-only platforms")

    monkeypatch.setattr(multiprocessing, "get_context", forbidden)
    with pytest.raises(RuntimeError, match="fork"):
        ProcessScatterPool(sharded)
    sharded.close()


def test_close_is_idempotent_and_final():
    _, sharded = build_engines(n=40)
    users = list(sharded.located_users())[:2]
    pool = ProcessScatterPool(sharded, processes=2)
    pool.query_many(users, k=3, alpha=0.3)
    pool.close()
    pool.close()  # second close: no-op, no error
    assert pool.closed
    assert pool.info()["workers_alive"] == 0
    with pytest.raises(PoolClosedError):
        pool.query_many(users, k=3, alpha=0.3)
    pool.close()  # closing after the failed batch is still a no-op
    sharded.close()


def test_close_mid_batch_never_respawns():
    """Concurrent close during a batch must not race the crash-respawn
    path into forking fresh workers past the teardown."""
    _, sharded = build_engines(n=120, seed=9)
    users = list(sharded.located_users())[:20]
    pool = ProcessScatterPool(sharded, processes=2)
    pool.warm_up()
    closer = threading.Thread(target=pool.close)
    try:
        closer.start()
        pool.query_many(users, k=5, alpha=0.3)
    except (PoolClosedError, BrokenPipeError, OSError, EOFError):
        pass  # the batch may observe the teardown at any pipe operation
    finally:
        closer.join()
    assert pool.closed
    assert pool.info()["workers_alive"] == 0
    sharded.close()


# -- read replicas -----------------------------------------------------


def test_replicas_answer_identically_and_stay_coherent():
    single, sharded = build_engines()
    users = list(sharded.located_users())[:8]
    with ProcessScatterPool(sharded, processes=2, replicas=2) as pool:
        pool.warm_up()
        info = pool.info()
        assert info["replicas"] == 2
        assert info["workers_alive"] == info["groups"] * 2
        # several passes so round-robin cycles every replica
        for _ in range(3):
            got = pool.query_many(users, k=5, alpha=0.3)
            want = [single.query(u, k=5, alpha=0.3) for u in users]
            assert [r.users for r in got] == [r.users for r in want]
        # every replica of every group receives the delta stream
        sharded.move_user(users[0], 0.77, 0.23)
        single.move_user(users[0], 0.77, 0.23)
        for _ in range(3):
            got = pool.query_many(users, k=5, alpha=0.3)
            want = [single.query(u, k=5, alpha=0.3) for u in users]
            assert [r.users for r in got] == [r.users for r in want]
        assert pool.info()["reforks"] == 0
    single.close()
    sharded.close()


# -- planner integration ----------------------------------------------


def test_auto_method_feeds_planner_from_process_scatter():
    """The satellite fix: per-shard work executed in workers still
    produces coordinator-side planner observations at merge time."""
    _, sharded = build_engines()
    users = list(sharded.located_users())[:6]
    sharded.planner.calibrate(sharded)
    before = sharded.planner.stats.observations
    with ProcessScatterPool(sharded, processes=2) as pool:
        results = pool.query_many(users, k=5, alpha=0.5, method="auto")
    assert sharded.planner.stats.observations > before
    # auto resolves once at the coordinator: the answer matches the
    # engine's own auto resolution for the same request
    for user, result in zip(users, results):
        assert result.users == sharded.query(user, k=5, alpha=0.5, method="auto").users
    sharded.close()


def test_per_shard_worker_latencies_surface_in_stats():
    _, sharded = build_engines()
    users = list(sharded.located_users())[:4]
    with ProcessScatterPool(sharded, processes=2) as pool:
        result = pool.query_many(users, k=5, alpha=0.3)[0]
    assert result.stats.extra["worker_time"] > 0.0
    assert result.stats.extra["shards_searched"] >= 1
    assert result.stats.elapsed > 0.0
    sharded.close()


# -- engine-level backend routing --------------------------------------


def test_engine_process_backend_routes_queries_through_warm_pool():
    single, sharded = build_engines()
    graph, locations = sharded.graph, sharded.locations
    process_engine = ShardedGeoSocialEngine(
        graph,
        locations.copy(),
        partitioner=sharded.partitioner,
        num_landmarks=2,
        s=3,
        seed=1,
        max_workers=1,
        scatter_backend="process",
    )
    try:
        assert process_engine.scatter_backend_info()["resolved"] == "process"
        users = list(process_engine.located_users())[:5]
        for u in users:
            assert (
                process_engine.query(u, k=5, alpha=0.3).users
                == single.query(u, k=5, alpha=0.3).users
            )
        info = process_engine.scatter_backend_info()
        assert info["pool"]["forks"] > 0
        # updates keep the engine-owned pool warm too
        process_engine.move_user(users[0], 0.66, 0.33)
        single.move_user(users[0], 0.66, 0.33)
        assert (
            process_engine.query(users[1], k=5, alpha=0.3).users
            == single.query(users[1], k=5, alpha=0.3).users
        )
        assert process_engine.scatter_backend_info()["pool"]["reforks"] == 0
    finally:
        process_engine.close()
        single.close()
    # closed engine still answers (documented rebuild-swap contract)
    assert process_engine.query(users[1], k=5, alpha=0.3).users


def test_resolve_scatter_backend_rules(monkeypatch):
    monkeypatch.delenv("REPRO_SCATTER_BACKEND", raising=False)
    assert resolve_scatter_backend("inline", n_shards=8, located=10**6) == "inline"
    assert resolve_scatter_backend("process", n_shards=1, located=0) == "process"
    # auto: small data stays inline regardless of shards/cores
    assert resolve_scatter_backend("auto", n_shards=8, located=100) == "inline"
    # auto: single shard stays inline regardless of size
    assert resolve_scatter_backend("auto", n_shards=1, located=10**6) == "inline"
    monkeypatch.setenv("REPRO_SCATTER_BACKEND", "process")
    assert resolve_scatter_backend("inline", n_shards=1, located=0) == "process"
    monkeypatch.setenv("REPRO_SCATTER_BACKEND", "nope")
    with pytest.raises(ValueError, match="scatter backend"):
        resolve_scatter_backend("auto", n_shards=4, located=10**6)


# -- journal units -----------------------------------------------------


def test_journal_suffix_and_truncation():
    journal = DeltaJournal(capacity=3)
    assert journal.since(0) == []
    for epoch in range(1, 6):
        journal.append(LocationDelta(epoch, epoch, 0.1, 0.2, None, 0))
    assert journal.latest_epoch == 5
    assert len(journal) == 3
    assert [d.epoch for d in journal.since(3)] == [4, 5]
    assert [d.epoch for d in journal.since(2)] == [3, 4, 5]
    assert journal.since(1) is None  # epoch-2 record fell off the ring
    assert journal.since(5) == []
    assert journal.since(9) == []
    assert journal.appended == 5
    with pytest.raises(ValueError):
        DeltaJournal(capacity=0)


def test_journal_wrap_boundary_is_truncation_not_empty_suffix():
    """The capacity-boundary pins: with the ring wrapped to [4, 5, 6],
    a worker synced at 3 gets a full replay (oldest retained record is
    exactly the next epoch), a worker synced at 4 (the wrap landed
    exactly on its synced epoch) gets the strict suffix, and a worker
    synced at 2 — whose next record fell off — gets ``None``
    (truncation ⇒ re-fork), never a silently empty suffix."""
    journal = DeltaJournal(capacity=3)
    for epoch in range(1, 7):
        journal.append(LocationDelta(epoch, epoch, 0.1, 0.2, None, 0))
    assert [d.epoch for d in journal.since(3)] == [4, 5, 6]
    assert [d.epoch for d in journal.since(4)] == [5, 6]
    assert journal.since(2) is None


def test_suffix_of_exactly_delta_budget_ships_without_refork():
    """A replay of exactly ``delta_budget`` records is within budget:
    the cutoff is strictly *over* budget, so the boundary case must
    ship as deltas, not spuriously re-fork."""
    _, sharded = build_engines()
    users = list(sharded.located_users())[:4]
    with ProcessScatterPool(sharded, processes=2, delta_budget=2) as pool:
        pool.warm_up()
        for i in range(2):  # exactly the budget
            sharded.move_user(users[0], 0.15 + 0.1 * i, 0.4)
        assert_matches_inline(pool, sharded, users)
        info = pool.info()
        assert info["reforks"] == 0
        assert info["cold_refork_rounds"] == 0
        assert info["deltas_shipped"] > 0
    sharded.close()


def test_sync_never_marks_a_worker_ahead_of_shipped_records():
    """The mark-ahead race: the update path bumps ``update_epoch`` and
    appends the journal record as two steps under the engine write
    lock, while the pool reads the epoch without it.  Catching a worker
    in that window must leave ``synced_epoch`` untouched (no record was
    shipped) — marking it up to the bumped epoch would make the
    in-flight delta permanently invisible to later syncs.  Once the
    append lands, the next sync ships it."""
    _, sharded = build_engines()
    users = list(sharded.located_users())[:4]
    mover = users[0]
    with ProcessScatterPool(sharded, processes=2) as pool:
        pool.warm_up()
        before = {key: w.synced_epoch for key, w in pool._workers.items()}
        # step 1 of the update path, caught mid-flight: epoch bumped,
        # record not yet appended
        sharded.update_epoch += 1
        pool._ensure_workers()
        mid = {key: w.synced_epoch for key, w in pool._workers.items()}
        assert mid == before, "empty suffix must not advance synced_epoch"
        assert pool.info()["reforks"] == 0
        # step 2 lands: a no-op move record for the bumped epoch
        x, y = sharded.locations.get(mover)
        sid = sharded.shard_of_user(mover)
        sharded._journal.append(
            LocationDelta(sharded.update_epoch, mover, x, y, sid, sid)
        )
        pool._ensure_workers()
        after = {key: w.synced_epoch for key, w in pool._workers.items()}
        assert all(e == sharded.update_epoch for e in after.values())
        assert pool.info()["reforks"] == 0
        assert_matches_inline(pool, sharded, users)
    sharded.close()
