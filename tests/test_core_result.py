"""Tests for the top-k buffer and result containers."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import Neighbor, SSRQResult, TopKBuffer
from repro.core.stats import SearchStats

INF = math.inf


class TestTopKBuffer:
    def test_fk_infinite_until_full(self):
        buf = TopKBuffer(2)
        assert buf.fk == INF
        buf.offer(1, 0.5, 1.0, 1.0)
        assert buf.fk == INF
        buf.offer(2, 0.3, 1.0, 1.0)
        assert buf.fk == 0.5

    def test_eviction_of_worst(self):
        buf = TopKBuffer(2)
        buf.offer(1, 0.5, 0, 0)
        buf.offer(2, 0.3, 0, 0)
        assert buf.offer(3, 0.4, 0, 0)
        assert sorted(nb.user for nb in buf.neighbors()) == [2, 3]
        assert buf.fk == 0.4

    def test_rejects_worse_than_fk(self):
        buf = TopKBuffer(1)
        buf.offer(1, 0.2, 0, 0)
        assert not buf.offer(2, 0.9, 0, 0)
        assert buf.neighbors()[0].user == 1

    def test_rejects_infinite_scores(self):
        buf = TopKBuffer(3)
        assert not buf.offer(1, INF, INF, 1.0)
        assert len(buf) == 0

    def test_rejects_nan(self):
        buf = TopKBuffer(3)
        assert not buf.offer(1, float("nan"), 0, 0)

    def test_tie_break_prefers_smaller_user(self):
        buf = TopKBuffer(1)
        buf.offer(5, 0.5, 0, 0)
        assert buf.offer(2, 0.5, 0, 0)  # same score, smaller id wins
        assert buf.neighbors()[0].user == 2
        assert not buf.offer(9, 0.5, 0, 0)

    def test_neighbors_sorted_by_score_then_user(self):
        buf = TopKBuffer(4)
        buf.offer(3, 0.2, 0, 0)
        buf.offer(1, 0.5, 0, 0)
        buf.offer(2, 0.2, 0, 0)
        users = [nb.user for nb in buf.neighbors()]
        assert users == [2, 3, 1]

    def test_contains(self):
        buf = TopKBuffer(2)
        buf.offer(7, 0.1, 0, 0)
        assert 7 in buf
        assert 8 not in buf

    def test_invalid_k(self):
        import pytest

        with pytest.raises(ValueError):
            TopKBuffer(0)

    def test_reoffered_user_ignored(self):
        """A user's score is deterministic per query, so re-offers are
        ignored (this is what makes warm-started searches safe)."""
        buf = TopKBuffer(3)
        assert buf.offer(7, 0.5, 0, 0)
        assert not buf.offer(7, 0.5, 0, 0)
        assert len(buf) == 1

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.integers(0, 50), st.floats(min_value=0, max_value=10), min_size=1, max_size=40
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_property_matches_sorted_prefix(self, scores, k):
        """The buffer must retain exactly the k best (score, user) pairs
        over distinct users."""
        buf = TopKBuffer(k)
        items = list(scores.items())
        for user, score in items:
            buf.offer(user, score, 0, 0)
        expected = sorted((s, u) for u, s in items)[:k]
        got = [(nb.score, nb.user) for nb in buf.neighbors()]
        assert got == expected


class TestSSRQResult:
    def test_accessors(self):
        neighbors = [Neighbor(3, 0.1, 1.0, 2.0), Neighbor(5, 0.4, 2.0, 1.0)]
        result = SSRQResult(0, 2, 0.3, neighbors, SearchStats())
        assert result.users == [3, 5]
        assert result.scores == [0.1, 0.4]
        assert result.fk == 0.4
        assert len(result) == 2
        assert list(result) == neighbors

    def test_empty_result(self):
        result = SSRQResult(0, 5, 0.3, [], SearchStats())
        assert result.fk == INF
        assert result.users == []
