"""Unit contracts of the data-plane kernels, parametrized over both
backends, plus the columnar regression pins of the refactor:

- ``LocationTable.bbox`` runs as one vectorized nanmin/nanmax pass;
- shard-bound refreshes are bulk reductions — repeated refreshes never
  re-scan per-user (no ``LandmarkIndex.vector`` calls);
- the legacy ``LocationTable(xs, ys)`` constructor warns and points to
  ``from_columns``.
"""

from __future__ import annotations

import math

import pytest

from repro.backend import HAS_NUMPY, PythonKernels, available_backends, resolve_backend
from repro.graph.landmarks import LandmarkIndex
from repro.graph.socialgraph import SocialGraph
from repro.index.bounds import social_lower_bound_vertex
from repro.spatial.point import LocationTable

INF = math.inf
NAN = math.nan

BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])


@pytest.fixture(params=BACKENDS)
def kernels(request):
    return resolve_backend(request.param)


@pytest.fixture(scope="module")
def landmark_fixture():
    g = SocialGraph.from_edges(
        6, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.5), (0, 3, 5.0)]
    )  # vertices 4, 5 disconnected
    return LandmarkIndex(g, [0, 2])


class TestEuclideanKernel:
    def test_matches_scalar_distance(self, kernels):
        table = LocationTable.from_columns([0.0, 0.3, NAN, 0.9], [0.0, 0.4, NAN, 0.1])
        xs, ys = table.columns()
        out = kernels.euclidean_to_point(xs, ys, 0.0, 0.0, [0, 1, 2, 3])
        assert float(out[0]) == 0.0
        assert float(out[1]) == 0.5
        assert float(out[2]) == INF
        assert float(out[3]) == table.distance_to(3, 0.0, 0.0)

    def test_all_users_when_ids_omitted(self, kernels):
        table = LocationTable.from_columns([0.0, 3.0], [0.0, 4.0])
        xs, ys = table.columns()
        out = kernels.euclidean_to_point(xs, ys, 0.0, 0.0)
        assert [float(v) for v in out] == [0.0, 5.0]

    def test_nan_query_point_is_infinitely_far(self, kernels):
        table = LocationTable.from_columns([0.1, 0.2], [0.1, 0.2])
        xs, ys = table.columns()
        out = kernels.euclidean_to_point(xs, ys, NAN, NAN, [0, 1])
        assert [float(v) for v in out] == [INF, INF]

    def test_half_located_coordinate_yields_inf(self, kernels):
        # LocationTable never stores (finite, NaN) pairs, but the kernel
        # contract is per-coordinate: any NaN on either axis means
        # "infinitely far", identically on both backends.
        xs = [0.3, NAN, 0.5]
        ys = [NAN, 0.2, 0.5]
        out = kernels.euclidean_to_point(xs, ys, 0.5, 0.5, [0, 1, 2])
        assert [float(v) for v in out] == [INF, INF, 0.0]
        out = kernels.euclidean_to_point(xs, ys, 0.5, 0.5)
        assert [float(v) for v in out] == [INF, INF, 0.0]


class TestAltBoundKernel:
    def test_matches_vertex_lower_bound(self, kernels, landmark_fixture):
        lm = landmark_fixture
        query_vector = lm.vector(0)
        ids = [1, 2, 3, 4]
        out = kernels.alt_lower_bounds(lm, query_vector, ids)
        for pos, u in enumerate(ids):
            expected = social_lower_bound_vertex(query_vector, lm.vector(u))
            assert float(out[pos]) == expected

    def test_disconnected_sides(self, kernels, landmark_fixture):
        lm = landmark_fixture
        # query = disconnected vertex 4: inf vs finite -> inf bound;
        # vs the equally disconnected vertex 5 -> uninformative -> 0.
        query_vector = lm.vector(4)
        out = kernels.alt_lower_bounds(lm, query_vector, [0, 5])
        assert float(out[0]) == INF
        assert float(out[1]) == 0.0


class TestBlendKernel:
    def test_zero_weight_ignores_infinite_distance(self, kernels):
        assert [float(v) for v in kernels.blend(0.5, 0.0, [2.0, INF], [INF, INF])] == [1.0, INF]
        assert [float(v) for v in kernels.blend(0.0, 0.5, [INF, INF], [2.0, 4.0])] == [1.0, 2.0]
        assert [float(v) for v in kernels.blend(0.0, 0.0, [INF], [INF])] == [0.0]

    def test_blended(self, kernels):
        out = kernels.blend(0.5, 0.25, [2.0, 4.0], [4.0, 8.0])
        assert [float(v) for v in out] == [2.0, 4.0]


class TestTopKKernel:
    def test_ties_break_toward_smaller_id(self, kernels):
        scores = [0.5, 0.2, 0.5, INF, 0.2]
        ids = [10, 11, 3, 0, 4]
        picked = kernels.top_k_by_score(scores, ids, 3)
        # (0.2, 4), (0.2, 11), (0.5, 3): positions 4, 1, 2
        assert [int(i) for i in picked] == [4, 1, 2]

    def test_infinite_scores_never_qualify(self, kernels):
        assert kernels.top_k_by_score([INF, INF], [0, 1], 2) == []

    def test_nonpositive_k_selects_nothing(self, kernels):
        assert kernels.top_k_by_score([0.1, 0.2], [0, 1], 0) == []
        assert kernels.top_k_by_score([0.1, 0.2], [0, 1], -1) == []

    def test_partitioned_selection_keeps_boundary_ties_exact(self, kernels):
        # Many entries tie exactly at the k-th score: the argpartition
        # fast path must widen to every tie before ordering by id.
        scores = [0.9] * 50 + [0.1] * 3 + [0.5] * 40
        ids = list(range(200, 250)) + [7, 3, 5] + list(range(100, 140))
        picked = kernels.top_k_by_score(scores, ids, 8)
        picked_ids = [ids[i] for i in picked]
        assert picked_ids == [3, 5, 7, 100, 101, 102, 103, 104]


class TestEnvelopeKernels:
    def test_nanbbox(self, kernels):
        table = LocationTable.from_columns([0.2, NAN, 0.8, 0.5], [0.9, NAN, 0.1, 0.4])
        xs, ys = table.columns()
        assert kernels.nanbbox(xs, ys, [0, 1, 2, 3]) == (0.2, 0.1, 0.8, 0.9)
        assert kernels.nanbbox(xs, ys, [1]) is None

    def test_nanbbox_half_located_rows_are_skipped(self, kernels):
        # Per-coordinate contract, matching euclidean_to_point: NaN on
        # either axis excludes the point from the envelope.
        assert kernels.nanbbox([0.5, 1.0], [NAN, 2.0], [0, 1]) == (1.0, 2.0, 1.0, 2.0)
        assert kernels.nanbbox([NAN, 0.5], [1.0, NAN]) is None

    def test_summary_minmax(self, kernels, landmark_fixture):
        lm = landmark_fixture
        m_check, m_hat = kernels.summary_minmax(lm, [1, 2, 3])
        vectors = [lm.vector(u) for u in (1, 2, 3)]
        for j in range(lm.m):
            assert m_check[j] == min(v[j] for v in vectors)
            assert m_hat[j] == max(v[j] for v in vectors)

    def test_dense_from_dict_and_count_finite(self, kernels):
        column = kernels.dense_from_dict(4, {1: 2.0, 3: 0.5}, INF)
        assert [float(v) for v in column] == [INF, 2.0, INF, 0.5]
        assert kernels.count_finite(column) == 2


class TestResolveBackend:
    def test_available_backends_lists_python(self):
        assert "python" in available_backends()

    def test_default_prefers_numpy_when_present(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        expected = "numpy" if HAS_NUMPY else "python"
        assert resolve_backend("auto").name == expected

    def test_rejects_unknown_names_and_types(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")
        with pytest.raises(TypeError):
            resolve_backend(42)

    def test_passthrough_instance(self):
        kernels = PythonKernels()
        assert resolve_backend(kernels) is kernels


class TestColumnarRegressions:
    def test_bbox_uses_columns_not_per_user_calls(self):
        pytest.importorskip("numpy")
        table = LocationTable.from_columns([0.1, 0.9, NAN], [0.2, 0.8, NAN])
        calls = {"n": 0}
        original = LocationTable.has_location

        def counting(self, user):
            calls["n"] += 1
            return original(self, user)

        try:
            LocationTable.has_location = counting
            box = table.bbox()
            subset = table.bbox([0, 1])
        finally:
            LocationTable.has_location = original
        assert (box.minx, box.miny, box.maxx, box.maxy) == (0.1, 0.2, 0.9, 0.8)
        assert (subset.minx, subset.maxx) == (0.1, 0.9)
        assert calls["n"] == 0  # one vectorized nanmin/nanmax pass

    def test_repeated_shard_bound_refreshes_do_not_rescan_per_user(self, monkeypatch):
        from repro.shard import ShardedGeoSocialEngine
        from tests.conftest import random_instance

        graph, locations = random_instance(60, seed=11, coverage=0.8)
        engine = ShardedGeoSocialEngine(
            graph, locations, n_shards=4, num_landmarks=3, s=3, max_workers=1
        )
        before = {sid: (b.minx, b.miny, b.maxx, b.maxy, b.summary.as_tuple())
                  for sid, b in engine._bounds.items()}

        def forbidden(self, v):
            raise AssertionError("refresh_bounds must not re-scan per-user vectors")

        monkeypatch.setattr(LandmarkIndex, "vector", forbidden)
        for _ in range(3):
            engine.refresh_bounds()  # bulk bbox + matrix min/max only
        after = {sid: (b.minx, b.miny, b.maxx, b.maxy, b.summary.as_tuple())
                 for sid, b in engine._bounds.items()}
        assert after == before  # exact recomputation, not a widen drift


class TestFromColumnsDeprecation:
    def test_legacy_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="from_columns"):
            table = LocationTable([0.0, 1.0], [0.0, 1.0])
        assert table.n_located == 2

    def test_from_columns_is_quiet_and_uniform(self, recwarn):
        a = LocationTable.from_columns([0.0, 1.0], (0.0, 1.0))
        b = LocationTable.from_columns(a.xs, a.ys)  # arrays round-trip
        assert [w for w in recwarn.list if issubclass(w.category, DeprecationWarning)] == []
        assert b.get(1) == (1.0, 1.0)
        if HAS_NUMPY:
            import numpy as np

            b.set(0, 9.0, 9.0)  # copies, never aliases the source column
            assert float(a.xs[0]) == 0.0
            assert isinstance(a.xs, np.ndarray) and a.xs.dtype == np.float64
