"""Tentpole suite: the bounded-error sketch fast path (``approx``).

The contract under test, end to end:

- **the bound is certified, not benchmarked** — on every query, each
  reported neighbour's approx score differs from its exact score by at
  most ``result.error_bound`` (checked differentially against a full
  brute-force scan across users × alphas);
- **exactness on demand is bit-exact** — ``budget=0`` (or unset) is
  bit-identical to ``bruteforce`` through the engine, the sharded
  engine, the cached service, and the HTTP server;
- ``method="approx"`` is an explicit opt-in independent of any budget,
  routes to SPA at ``alpha == 0`` (the sketch has nothing to offer a
  pure-spatial query) and stays valid at ``alpha == 1``;
- the sharded engine delegates approx to one shard engine over the
  shared graph — answers identical to the single engine's;
- cache lines: budgeted and exact requests never share an entry,
  ``budget=0`` and unset do, and approx entries are non-repairable
  (recomputed after an invalidating move, never patched in place);
- the kernels agree across backends, and the sketch rejects
  inconsistent CSR tables.
"""

from __future__ import annotations

import pytest

from repro import GeoSocialEngine, QueryService, ShardedGeoSocialEngine, SketchIndex
from repro.backend import resolve_backend
from repro.core.engine import FORWARD_DETERMINISTIC_METHODS, METHODS
from repro.datasets.synthetic import gowalla_like
from repro.server import ServerClient, ServerThread
from repro.service.model import QueryRequest, result_payload

TOL = 1e-12
ALPHAS = (0.1, 0.3, 0.7, 1.0)


@pytest.fixture(scope="module")
def dataset():
    return gowalla_like(n=300, seed=13)


@pytest.fixture(scope="module")
def engine(dataset) -> GeoSocialEngine:
    return GeoSocialEngine.from_dataset(dataset, num_landmarks=4, s=5, seed=3)


@pytest.fixture(scope="module")
def sharded(engine, dataset):
    shard_engine = ShardedGeoSocialEngine(
        engine.graph,
        engine.locations.copy(),
        n_shards=3,
        seed=3,
        landmarks=engine.landmarks,
        normalization=engine.normalization,
        max_workers=1,
        scatter_backend="inline",
    )
    yield shard_engine
    shard_engine.close()


@pytest.fixture(scope="module")
def sample_users(engine) -> list[int]:
    return sorted(engine.locations.located_users())[:6]


def exact_scores(engine, user: int, alpha: float) -> dict[int, float]:
    """user -> exact score, for every finitely-scored user."""
    full = engine.query(user, k=engine.graph.n, alpha=alpha, method="bruteforce")
    return {nb.user: nb.score for nb in full}


# -- the bound ---------------------------------------------------------


def test_error_bound_certifies_every_reported_neighbor(engine, sample_users):
    """The differential property the whole fast path stands on: for
    every reported neighbour, |approx score − exact score| is within
    the advertised per-query bound — on every case, not on average."""
    cases = 0
    for user in sample_users:
        for alpha in ALPHAS:
            approx = engine.query(user, k=10, alpha=alpha, method="approx")
            truth = exact_scores(engine, user, alpha)
            assert approx.error_bound >= 0.0
            for nb in approx:
                assert nb.user in truth, (
                    f"approx reported {nb.user}, which has no finite exact score"
                )
                assert abs(nb.score - truth[nb.user]) <= approx.error_bound + TOL, (
                    f"user {user} alpha {alpha}: neighbour {nb.user} off by "
                    f"{abs(nb.score - truth[nb.user])} > bound {approx.error_bound}"
                )
                cases += 1
    assert cases > 0


def test_exact_methods_report_no_bound(engine, sample_users):
    """Exact methods carry ``error_bound=None`` — ``0.0`` is reserved
    for a *certified-exact* approx answer."""
    for method in ("bruteforce", "ais", "tsa"):
        result = engine.query(sample_users[0], k=5, alpha=0.3, method=method)
        assert result.error_bound is None


def test_approx_is_explicit_opt_in_without_budget(engine, sample_users):
    result = engine.query(sample_users[0], k=5, alpha=0.3, method="approx")
    assert result.method == "approx"
    assert len(result.users) == 5


def test_approx_is_a_registered_non_deterministic_method():
    assert "approx" in METHODS
    assert "approx" not in FORWARD_DETERMINISTIC_METHODS


def test_alpha_endpoint_routing(engine, sample_users):
    """``alpha == 0`` is pure spatial — the sketch contributes nothing,
    so approx routes to SPA (and is exact there); ``alpha == 1`` keeps
    the sketch path and its bound discipline."""
    user = sample_users[0]
    spatial = engine.query(user, k=5, alpha=0.0, method="approx")
    assert spatial.method == "spa"
    assert spatial.error_bound is None
    exact = engine.query(user, k=5, alpha=0.0, method="bruteforce")
    assert spatial.users == exact.users and spatial.scores == exact.scores
    social = engine.query(user, k=5, alpha=1.0, method="approx")
    assert social.method == "approx"
    truth = exact_scores(engine, user, 1.0)
    for nb in social:
        assert abs(nb.score - truth[nb.user]) <= social.error_bound + TOL


# -- budget semantics --------------------------------------------------


def test_budget_zero_bit_identical_through_every_path(engine, sharded, sample_users):
    """``budget=0`` and unset demand exactness: auto resolutions are
    bit-identical to bruteforce through the engine, the sharded
    engine, the cached service, and HTTP."""
    user, k, alpha = sample_users[0], 8, 0.3
    brute = engine.query(user, k=k, alpha=alpha, method="bruteforce")
    for budget in (None, 0, 0.0):
        auto = engine.query(user, k=k, alpha=alpha, method="auto", budget=budget)
        assert auto.users == brute.users and auto.scores == brute.scores
        assert auto.error_bound is None
        via_shards = sharded.query(user, k=k, alpha=alpha, method="auto", budget=budget)
        assert via_shards.users == brute.users and via_shards.scores == brute.scores
    with QueryService(engine, cache_size=256) as service:
        served = service.query(user, k=k, alpha=alpha, method="auto", budget=0.0)
        assert served.result.users == brute.users
        assert served.result.scores == brute.scores
        with ServerThread(service, workers=2) as handle:
            with ServerClient(handle.host, handle.port) as client:
                wire = client.query(user, k=k, alpha=alpha, method="auto", budget=0.0)
    assert wire["result"]["users"] == brute.users
    assert [nb["score"] for nb in wire["result"]["neighbors"]] == brute.scores
    assert wire["result"]["error_bound"] is None


def test_budgeted_auto_stays_within_budget(engine, sample_users):
    """When the planner does pick approx under a budget, the certified
    per-query bound it records respects that budget."""
    user = sample_users[1]
    for _ in range(8):  # enough resolutions to get past exploration
        result = engine.query(user, k=8, alpha=0.3, method="auto", budget=0.5)
        if result.method == "approx":
            assert 0.0 <= result.error_bound <= 0.5 + TOL
            break
    else:
        pytest.fail("a generous budget never resolved to approx")


def test_budget_validation_on_direct_engine_path(engine, sample_users):
    with pytest.raises(ValueError, match=r"budget must be in \[0, 1\]"):
        engine.query(sample_users[0], k=5, alpha=0.3, budget=1.5)
    with pytest.raises(ValueError, match="budget must be a number"):
        engine.query(sample_users[0], k=5, alpha=0.3, budget="lots")


# -- sharded delegation ------------------------------------------------


def test_sharded_approx_matches_single_engine(engine, sharded, sample_users):
    """Approx is delegated (global columnar sketch — it never
    scatters), so the sharded answer is the single engine's answer,
    bound included."""
    assert sharded.sketch is engine.sketch or (
        sharded.sketch.empirical_half == pytest.approx(engine.sketch.empirical_half)
    )
    for user in sample_users[:3]:
        got = sharded.query(user, k=6, alpha=0.3, method="approx")
        want = engine.query(user, k=6, alpha=0.3, method="approx")
        assert got.users == want.users
        assert got.scores == want.scores
        assert got.error_bound == want.error_bound


# -- cache discipline --------------------------------------------------


def test_cache_key_separates_budgeted_from_exact_lines(engine):
    service = QueryService(engine, cache_size=16)
    try:
        exact_unset = QueryRequest(3, k=5, alpha=0.3, method="approx")
        exact_zero = QueryRequest(3, k=5, alpha=0.3, method="approx", budget=0.0)
        budgeted = QueryRequest(3, k=5, alpha=0.3, method="approx", budget=0.5)
        key_unset = service._cache_key(exact_unset, engine, "approx")
        key_zero = service._cache_key(exact_zero, engine, "approx")
        key_budgeted = service._cache_key(budgeted, engine, "approx")
        assert key_unset == key_zero, "budget=0 and unset both demand exactness"
        assert key_budgeted != key_unset
    finally:
        service.close()


def test_approx_entries_recompute_after_update_never_repair(engine, sample_users):
    """An approx cache entry's stored social terms are sketch
    midpoints; re-scoring one after a move would compound error past
    the recorded bound.  The cache must classify it non-repairable:
    the next identical query is a recompute, and the repair counter
    does not move."""
    user = sample_users[2]
    with QueryService(engine, cache_size=64) as service:
        first = service.query(user, k=5, alpha=0.3, method="approx")
        assert not first.cached
        assert service.query(user, k=5, alpha=0.3, method="approx").cached
        member = first.result.users[0]
        repaired_before = service.stats.repaired_entries
        x, y = engine.locations.get(member)
        service.move_user(member, min(x + 1e-4, 1.0), y)
        again = service.query(user, k=5, alpha=0.3, method="approx")
        assert not again.cached, "a member move must invalidate the approx line"
        assert service.stats.repaired_entries == repaired_before
        # and the recomputed entry still honours the bound discipline
        truth = exact_scores(engine, user, 0.3)
        for nb in again.result:
            assert abs(nb.score - truth[nb.user]) <= again.result.error_bound + TOL


# -- wire shape --------------------------------------------------------


def test_error_bound_rides_the_result_payload(engine, sample_users):
    approx = engine.query(sample_users[0], k=5, alpha=0.3, method="approx")
    payload = result_payload(approx)
    assert payload["error_bound"] == approx.error_bound
    exact = engine.query(sample_users[0], k=5, alpha=0.3, method="tsa")
    assert result_payload(exact)["error_bound"] is None


def test_http_approx_round_trip(engine, sample_users):
    user = sample_users[0]
    want = engine.query(user, k=5, alpha=0.3, method="approx")
    with QueryService(engine, cache_size=0) as service:
        with ServerThread(service, workers=2) as handle:
            with ServerClient(handle.host, handle.port) as client:
                wire = client.query(user, k=5, alpha=0.3, method="approx")
    assert wire["result"]["method"] == "approx"
    assert wire["result"]["users"] == want.users
    assert wire["result"]["error_bound"] == want.error_bound


# -- kernels & construction --------------------------------------------


def test_sketch_kernels_agree_across_backends(dataset):
    pytest.importorskip("numpy", reason="needs the vectorized leg to compare")
    scalar = GeoSocialEngine.from_dataset(
        dataset, num_landmarks=4, s=5, seed=3, backend=resolve_backend("python")
    )
    vector = GeoSocialEngine.from_dataset(
        dataset, num_landmarks=4, s=5, seed=3, backend=resolve_backend("numpy")
    )
    user = sorted(scalar.locations.located_users())[0]
    a = scalar.query(user, k=8, alpha=0.3, method="approx")
    b = vector.query(user, k=8, alpha=0.3, method="approx")
    assert a.users == b.users
    for sa, sb in zip(a.scores, b.scores):
        assert sa == pytest.approx(sb, abs=1e-12)
    assert a.error_bound == pytest.approx(b.error_bound, abs=1e-12)


def test_sketch_rejects_inconsistent_tables(engine):
    sketch = engine.sketch
    with pytest.raises(ValueError, match="indptr"):
        SketchIndex.from_tables(
            engine.graph,
            engine.landmarks,
            list(sketch.indptr)[:-1],
            list(sketch.nbrs),
            list(sketch.dists),
            max_entries=sketch.max_entries,
            empirical_half=sketch.empirical_half,
        )
    with pytest.raises(ValueError, match="disagree"):
        SketchIndex.from_tables(
            engine.graph,
            engine.landmarks,
            list(sketch.indptr),
            list(sketch.nbrs)[:-1],
            list(sketch.dists),
            max_entries=sketch.max_entries,
            empirical_half=sketch.empirical_half,
        )


def test_sketch_build_is_deterministic(engine):
    rebuilt = SketchIndex.build(
        engine.graph, engine.landmarks, seed=engine.seed, kernels=engine.kernels
    )
    sketch = engine.sketch
    assert rebuilt.empirical_half == sketch.empirical_half
    assert rebuilt.entry_count() == sketch.entry_count()
    assert list(rebuilt.indptr) == list(sketch.indptr)
    assert list(rebuilt.nbrs) == list(sketch.nbrs)
