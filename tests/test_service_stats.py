"""Direct contract tests for the stats objects the serving stack
exposes — :class:`ServiceStats`, the cache's :class:`CacheStats` (via
``cache_info``), :class:`PlannerStats` and the server's
:class:`ServerStats`.

``/stats`` and ``/metrics`` are only as trustworthy as these counters;
this suite pins their arithmetic (rates, averages, maxima), their
snapshot key sets, and the cross-layer identities the server suite
relies on (requests = hits + misses, admitted = completed at rest).
"""

from __future__ import annotations

import pytest

from repro import GeoSocialEngine, PlannerStats, QueryService, ServiceStats
from repro.core.result import Neighbor, SSRQResult
from repro.datasets.synthetic import build_dataset
from repro.server import ServerStats
from repro.service.model import QueryRequest


def _result(method: str = "ais") -> SSRQResult:
    return SSRQResult(0, 1, 0.3, [Neighbor(9, 0.25, 1.0, 0.1)], method=method)


# -- ServiceStats arithmetic -------------------------------------------


def test_service_stats_zero_state():
    stats = ServiceStats()
    assert stats.hit_rate == 0.0
    assert stats.avg_query_seconds == 0.0
    snap = stats.snapshot()
    assert snap["requests"] == 0
    assert snap["per_method"] == {}
    assert snap["total_pops"] == 0


def test_service_stats_hit_rate():
    stats = ServiceStats(cache_hits=3, cache_misses=1)
    assert stats.hit_rate == 0.75
    assert stats.snapshot()["hit_rate"] == 0.75


def test_record_execution_accumulates():
    stats = ServiceStats()
    stats.record_execution("ais", _result("ais"), 0.5)
    stats.record_execution("spa", _result("spa"), 1.5)
    stats.record_execution("ais", _result("ais"), 0.25)
    assert stats.executed == 3
    assert stats.query_seconds == pytest.approx(2.25)
    assert stats.avg_query_seconds == pytest.approx(0.75)
    assert stats.max_query_seconds == 1.5
    assert stats.per_method == {"ais": 2, "spa": 1}


def test_snapshot_per_method_is_a_copy():
    stats = ServiceStats()
    stats.record_execution("ais", _result(), 0.1)
    snap = stats.snapshot()
    snap["per_method"]["ais"] = 999
    assert stats.per_method["ais"] == 1


# -- live service counters + cache_info --------------------------------


@pytest.fixture(scope="module")
def engine() -> GeoSocialEngine:
    dataset = build_dataset("stats-suite", n=150, avg_degree=6.0, coverage=0.9, seed=5)
    return GeoSocialEngine.from_dataset(dataset, num_landmarks=4, s=5, seed=1)


def test_cache_info_contract(engine):
    with QueryService(engine) as service:
        user = sorted(engine.locations.located_users())[0]
        service.query(user, k=5)
        service.query(user, k=5)  # identical: must hit
        service.query(user, k=6)  # different k: must miss
        info = service.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 2
        assert info["size"] == 2
        assert info["hit_rate"] == pytest.approx(1 / 3)
        assert info["capacity"] == 1024
        # service-level counters agree with the cache's own
        snap = service.stats.snapshot()
        assert snap["requests"] == 3
        assert snap["cache_hits"] == info["hits"]
        assert snap["cache_misses"] == info["misses"]
        assert snap["requests"] == snap["cache_hits"] + snap["cache_misses"]
        assert snap["executed"] == snap["cache_misses"]


def test_cache_disabled_counts_all_misses(engine):
    with QueryService(engine, cache_size=0) as service:
        user = sorted(engine.locations.located_users())[0]
        for _ in range(3):
            service.query(user, k=5)
        snap = service.stats.snapshot()
        assert snap["cache_hits"] == 0
        assert snap["cache_misses"] == 3
        assert snap["executed"] == 3
        # a disabled result cache reports no result-cache counters at
        # all rather than zeros; only the engine's social column cache
        # section (independent of cache_size) survives
        assert set(service.cache_info()) <= {"social"}


def test_batch_dedup_counted(engine):
    with QueryService(engine, cache_size=0) as service:
        user = sorted(engine.locations.located_users())[0]
        responses = service.query_many(
            [QueryRequest(user, k=5), QueryRequest(user, k=5), QueryRequest(user, k=7)]
        )
        assert len(responses) == 3
        snap = service.stats.snapshot()
        assert snap["batches"] == 1
        assert snap["requests"] == 3
        assert snap["deduplicated"] == 1
        assert snap["executed"] == 2


def test_invalidation_counters_move_on_update(engine):
    with QueryService(engine) as service:
        located = sorted(engine.locations.located_users())
        user = located[0]
        service.query(user, k=5)
        before = service.stats.snapshot()
        service.move_user(user, 0.123, 0.321)
        after = service.stats.snapshot()
        touched = (
            (after["invalidated_entries"] - before["invalidated_entries"])
            + (after["repaired_entries"] - before["repaired_entries"])
            + (after["reused_entries"] - before["reused_entries"])
            + (after["full_invalidations"] - before["full_invalidations"])
        )
        assert touched >= 1, "an update must account for the cached entry"


# -- PlannerStats -------------------------------------------------------


def test_planner_stats_snapshot_arithmetic():
    stats = PlannerStats()
    snap = stats.snapshot()
    assert snap["auto_resolutions"] == 0
    stats.auto_resolutions += 2
    stats.per_method["ais"] = stats.per_method.get("ais", 0) + 2
    snap = stats.snapshot()
    assert snap["auto_resolutions"] == 2
    assert snap["per_method"] == {"ais": 2}
    # snapshot must be detached from live state
    snap["per_method"]["ais"] = 99
    assert stats.per_method["ais"] == 2


def test_planner_stats_accumulate_through_auto_queries(engine):
    with QueryService(engine, cache_size=0) as service:
        user = sorted(engine.locations.located_users())[0]
        before = engine.planner.stats.snapshot()["auto_resolutions"]
        service.query(user, k=5, method="auto")
        service.query(user, k=6, method="auto")
        after = engine.planner.stats.snapshot()["auto_resolutions"]
        assert after - before == 2


# -- ServerStats --------------------------------------------------------


def test_server_stats_snapshot_keys():
    stats = ServerStats()
    snap = stats.snapshot()
    for key in (
        "connections",
        "requests",
        "admitted",
        "shed",
        "completed",
        "deadline_expired",
        "deadline_timeouts",
        "coalesced_batches",
        "coalesced_requests",
        "streams_opened",
        "streams_closed",
        "events_sent",
    ):
        assert snap[key] == 0, key
    stats.admitted += 5
    stats.completed += 5
    stats.shed += 2
    snap = stats.snapshot()
    assert (snap["admitted"], snap["completed"], snap["shed"]) == (5, 5, 2)
