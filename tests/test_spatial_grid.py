"""Unit tests for the uniform grid index."""

import math
import random

import pytest

from repro.spatial.grid import UniformGrid
from repro.spatial.point import BBox, LocationTable


def make_locations(points):
    table = LocationTable.empty(len(points))
    for user, (x, y) in enumerate(points):
        table.set(user, x, y)
    return table


UNIT = BBox(0.0, 0.0, 1.0, 1.0)


class TestGeometry:
    def test_cell_of_maps_interior_points(self):
        grid = UniformGrid(UNIT, 4)
        assert grid.cell_of(0.1, 0.1) == (0, 0)
        assert grid.cell_of(0.9, 0.9) == (3, 3)
        assert grid.cell_of(0.30, 0.80) == (1, 3)

    def test_cell_of_clamps_outside_points(self):
        grid = UniformGrid(UNIT, 4)
        assert grid.cell_of(-5.0, 0.5) == (0, 2)
        assert grid.cell_of(2.0, 2.0) == (3, 3)

    def test_max_coordinate_lands_in_last_cell(self):
        grid = UniformGrid(UNIT, 4)
        assert grid.cell_of(1.0, 1.0) == (3, 3)

    def test_cell_bbox_tiles_the_domain(self):
        grid = UniformGrid(UNIT, 2)
        box = grid.cell_bbox(1, 0)
        assert (box.minx, box.miny, box.maxx, box.maxy) == (0.5, 0.0, 1.0, 0.5)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            UniformGrid(UNIT, 0)

    def test_degenerate_bbox_does_not_crash(self):
        grid = UniformGrid(BBox(0.5, 0.5, 0.5, 0.5), 3)
        assert grid.cell_of(0.5, 0.5) == (0, 0)


class TestContents:
    def test_insert_remove_roundtrip(self):
        grid = UniformGrid(UNIT, 4)
        cell = grid.insert(7, 0.1, 0.1)
        assert 7 in grid
        assert grid.users_in(*cell) == [7]
        assert grid.remove(7) == cell
        assert 7 not in grid
        assert grid.users_in(*cell) == []

    def test_double_insert_rejected(self):
        grid = UniformGrid(UNIT, 4)
        grid.insert(1, 0.1, 0.1)
        with pytest.raises(ValueError):
            grid.insert(1, 0.2, 0.2)

    def test_move_between_cells(self):
        grid = UniformGrid(UNIT, 4)
        grid.insert(1, 0.1, 0.1)
        old, new = grid.move(1, 0.9, 0.9)
        assert old == (0, 0)
        assert new == (3, 3)
        assert grid.cell_of_user(1) == (3, 3)

    def test_move_within_cell_is_noop(self):
        grid = UniformGrid(UNIT, 4)
        grid.insert(1, 0.10, 0.10)
        old, new = grid.move(1, 0.12, 0.12)
        assert old == new == (0, 0)

    def test_empty_cells_not_materialised(self):
        grid = UniformGrid(UNIT, 10)
        grid.insert(1, 0.05, 0.05)
        assert len(list(grid.nonempty_cells())) == 1

    def test_build_indexes_only_located_users(self):
        table = LocationTable.empty(3)
        table.set(0, 0.2, 0.2)
        table.set(2, 0.8, 0.8)
        grid = UniformGrid.build(table, 4)
        assert len(grid) == 2
        assert 1 not in grid


class TestRings:
    def test_ring_zero_is_center(self):
        grid = UniformGrid(UNIT, 5)
        grid.insert(1, 0.5, 0.5)
        center = grid.cell_of(0.5, 0.5)
        assert list(grid.ring_cells(center, 0)) == [center]

    def test_rings_partition_all_nonempty_cells(self):
        rng = random.Random(3)
        table = make_locations([(rng.random(), rng.random()) for _ in range(200)])
        grid = UniformGrid.build(table, 8)
        center = grid.cell_of(0.5, 0.5)
        seen = set()
        for r in range(grid.max_ring_radius(center) + 1):
            for cell in grid.ring_cells(center, r):
                assert cell not in seen, "cell reported by two rings"
                seen.add(cell)
        assert seen == set(grid.nonempty_cells())

    def test_ring_cells_have_exact_chebyshev_distance(self):
        rng = random.Random(4)
        table = make_locations([(rng.random(), rng.random()) for _ in range(150)])
        grid = UniformGrid.build(table, 6)
        center = (2, 3)
        for r in range(1, 4):
            for ix, iy in grid.ring_cells(center, r):
                assert max(abs(ix - center[0]), abs(iy - center[1])) == r

    def test_ring_lower_bound_is_valid(self):
        """Every cell at ring r must be at least ring_lower_bound(r) away
        from any point in the center cell."""
        grid = UniformGrid(UNIT, 10)
        for user, (x, y) in enumerate([(0.05 * i, 0.05 * i) for i in range(20)]):
            grid.insert(user, min(x, 0.999), min(y, 0.999))
        qx, qy = 0.51, 0.47
        center = grid.cell_of(qx, qy)
        for r in range(1, grid.max_ring_radius(center) + 1):
            lb = grid.ring_lower_bound(r)
            for ix, iy in grid.ring_cells(center, r):
                assert grid.cell_mindist(ix, iy, qx, qy) >= lb - 1e-12

    def test_cell_mindist_lower_bounds_members(self):
        rng = random.Random(5)
        points = [(rng.random(), rng.random()) for _ in range(300)]
        table = make_locations(points)
        grid = UniformGrid.build(table, 7)
        qx, qy = 0.3, 0.6
        for (ix, iy), users in grid.cells.items():
            bound = grid.cell_mindist(ix, iy, qx, qy)
            for u in users:
                assert table.distance_to(u, qx, qy) >= bound - 1e-12

    def test_cell_mindist_safe_for_clamped_out_of_box_users(self):
        """Users moved outside the construction bbox are clamped into
        border cells; bounds must stay valid for in-box queries."""
        table = make_locations([(0.5, 0.5), (0.6, 0.6)])
        grid = UniformGrid.build(table, 4)
        table.set(1, 1.7, 0.5)  # physically outside the unit box
        grid.move(1, 1.7, 0.5)
        ix, iy = grid.cell_of_user(1)
        qx, qy = 0.1, 0.5
        assert grid.cell_mindist(ix, iy, qx, qy) <= table.distance_to(1, qx, qy) + 1e-12
