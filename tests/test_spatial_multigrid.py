"""Tests for the two-level grid underlying the aggregate index."""

import random

import pytest

from repro.spatial.multigrid import MultiLevelGrid
from repro.spatial.point import BBox, LocationTable


def make_table(points):
    table = LocationTable.empty(len(points))
    for user, (x, y) in enumerate(points):
        table.set(user, x, y)
    return table


def test_leaf_resolution_is_s_squared():
    grid = MultiLevelGrid(BBox(0, 0, 1, 1), s=4)
    assert grid.leaf_grid.nx == 16


def test_parent_of_leaf():
    grid = MultiLevelGrid(BBox(0, 0, 1, 1), s=3)
    assert grid.parent_of((7, 2)) == (2, 0)
    assert grid.parent_of((0, 0)) == (0, 0)


def test_children_only_nonempty():
    table = make_table([(0.01, 0.01), (0.02, 0.02), (0.9, 0.9)])
    grid = MultiLevelGrid.build(table, s=3)
    top = grid.parent_of(grid.leaf_of(0.01, 0.01))
    children = list(grid.children_of(top))
    assert children  # at least the leaf holding users 0/1
    for leaf in children:
        assert grid.users_in_leaf(leaf)


def test_top_bbox_contains_children_bboxes():
    grid = MultiLevelGrid(BBox(0, 0, 2, 2), s=4)
    top = (1, 2)
    top_box = grid.top_bbox(top)
    bx, by = top[0] * grid.s, top[1] * grid.s
    for dx in range(grid.s):
        for dy in range(grid.s):
            leaf_box = grid.leaf_bbox((bx + dx, by + dy))
            assert leaf_box.minx >= top_box.minx - 1e-12
            assert leaf_box.maxx <= top_box.maxx + 1e-12
            assert leaf_box.miny >= top_box.miny - 1e-12
            assert leaf_box.maxy <= top_box.maxy + 1e-12


def test_nonempty_tops_cover_all_users():
    rng = random.Random(21)
    table = make_table([(rng.random(), rng.random()) for _ in range(120)])
    grid = MultiLevelGrid.build(table, s=5)
    covered = set()
    for top in grid.nonempty_tops():
        for leaf in grid.children_of(top):
            covered.update(grid.users_in_leaf(leaf))
    assert covered == set(range(120))


def test_insert_remove():
    grid = MultiLevelGrid(BBox(0, 0, 1, 1), s=3)
    leaf = grid.insert(5, 0.5, 0.5)
    assert 5 in grid
    assert grid.leaf_of_user(5) == leaf
    grid.remove(5)
    assert 5 not in grid
    assert len(grid) == 0


def test_invalid_fanout():
    with pytest.raises(ValueError):
        MultiLevelGrid(BBox(0, 0, 1, 1), s=0)


def test_every_user_under_its_parent():
    rng = random.Random(22)
    table = make_table([(rng.random(), rng.random()) for _ in range(80)])
    grid = MultiLevelGrid.build(table, s=4)
    for user in range(80):
        leaf = grid.leaf_of_user(user)
        top = grid.parent_of(leaf)
        assert leaf in set(grid.children_of(top))
