"""Concurrency stress: interleaved updates and batched queries across
shards.

The sharded engine exposes the same ``rw_lock``/listener contract as
the single engine, so the service layer's guarantees must carry over:
no deadlocks between movers and batch readers, no stale cache hits
after a move (including boundary crossings that re-home a user), and
every served ranking equal to what a freshly built single engine over a
snapshot of the same data produces.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.engine import GeoSocialEngine
from repro.service import QueryRequest, QueryService
from repro.shard import ShardedGeoSocialEngine
from tests.conftest import random_instance

JOIN_TIMEOUT = 60.0


@pytest.fixture()
def setup():
    graph, locations = random_instance(90, seed=511, coverage=0.85)
    sharded = ShardedGeoSocialEngine(
        graph, locations, n_shards=4, num_landmarks=3, s=3, seed=3, max_workers=2
    )
    yield graph, sharded
    sharded.close()


def snapshot_engine(graph, sharded):
    """A fresh single engine over the current location snapshot, scoring
    with the sharded engine's normalization so rankings are comparable."""
    return GeoSocialEngine(
        graph,
        sharded.locations.copy(),
        num_landmarks=3,
        s=3,
        seed=3,
        normalization=sharded.normalization,
    )


def test_movers_and_batch_readers_do_not_deadlock_and_stay_exact(setup):
    graph, sharded = setup
    service = QueryService(sharded, cache_size=256, max_workers=2)
    users = list(sharded.locations.located_users())
    failures: list[str] = []
    stop = threading.Event()

    def mover(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(60):
                if stop.is_set():
                    return
                u = rng.randrange(graph.n)
                if rng.random() < 0.85:
                    # includes boundary crossings and out-of-box moves
                    service.move_user(u, rng.uniform(-0.3, 1.3), rng.uniform(-0.3, 1.3))
                elif sharded.locations.has_location(u):
                    service.forget_location(u)
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(f"mover: {exc!r}")
            stop.set()

    def reader(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(25):
                if stop.is_set():
                    return
                batch = [
                    QueryRequest(rng.choice(users), k=4, alpha=rng.choice([0.2, 0.5]))
                    for _ in range(4)
                ]
                try:
                    responses = service.query_many(batch)
                except ValueError as exc:
                    # A mover may have forgotten this user's location
                    # mid-run; the engine then (correctly, like the
                    # single engine) rejects the spatial query.
                    if "no known location" not in str(exc):
                        raise
                    continue
                for req, resp in zip(batch, responses):
                    if resp.result.query_user != req.user:
                        failures.append("response order corrupted")
                        stop.set()
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(f"reader: {exc!r}")
            stop.set()

    threads = [threading.Thread(target=mover, args=(7,))] + [
        threading.Thread(target=reader, args=(s,)) for s in (1, 2, 3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
        assert not t.is_alive(), "deadlock: thread failed to finish in time"
    assert not failures, failures

    # Quiesced: everything the service now serves must match a freshly
    # built single engine over the same data — and cache hits must not
    # be stale after all that churn.
    fresh = snapshot_engine(graph, sharded)
    located = list(sharded.locations.located_users())
    for q in located[:10]:
        served = service.query(QueryRequest(q, k=5, alpha=0.4)).result
        expected = fresh.query(q, k=5, alpha=0.4)
        assert served.users == expected.users
        again = service.query(QueryRequest(q, k=5, alpha=0.4))
        assert again.cached
        assert again.result.users == expected.users
    service.close()


def test_no_stale_cache_hits_on_boundary_crossings(setup):
    """Every move — same-shard or boundary-crossing — must evict the
    mover's cached lines; served results always match a snapshot."""
    graph, sharded = setup
    service = QueryService(sharded, cache_size=512, max_workers=1)
    rng = random.Random(23)
    located = list(sharded.locations.located_users())
    crossings = 0
    for round_no in range(30):
        q = rng.choice(located)
        first = service.query(QueryRequest(q, k=5, alpha=0.3))
        before = sharded.shard_of_user(q)
        x, y = rng.random(), rng.random()
        service.move_user(q, x, y)
        if sharded.shard_of_user(q) != before:
            crossings += 1
        response = service.query(QueryRequest(q, k=5, alpha=0.3))
        assert not response.cached, "stale hit served for a moved user"
        fresh = snapshot_engine(graph, sharded)
        assert response.result.users == fresh.query(q, k=5, alpha=0.3).users
    assert crossings > 0, "workload never crossed a shard boundary"
    service.close()


def test_service_rebuild_preserves_the_sharded_kind(setup):
    """Folding batched edge updates into a fresh engine must re-shard,
    not silently fall back to a single engine."""
    graph, sharded = setup
    service = QueryService(sharded, cache_size=64, max_workers=1)
    located = list(sharded.locations.located_users())
    service.query(QueryRequest(located[0], k=4))
    service.update_edge(located[0], located[1], 0.05)
    new_engine = service.rebuild_engine()
    try:
        assert isinstance(new_engine, ShardedGeoSocialEngine)
        assert new_engine is service.engine and new_engine is not sharded
        assert new_engine.n_shards == sharded.n_shards
        served = service.query(QueryRequest(located[0], k=4)).result
        fresh = GeoSocialEngine(
            new_engine.graph,
            new_engine.locations.copy(),
            num_landmarks=3,
            s=3,
            seed=3,
            normalization=new_engine.normalization,
        )
        assert served.users == fresh.query(located[0], k=4).users
    finally:
        service.close()
        new_engine.close()


def test_concurrent_queries_direct_on_engine_are_safe(setup):
    """Read-only scatter queries may run concurrently without the
    service (same contract as the single engine)."""
    graph, sharded = setup
    users = list(sharded.locations.located_users())[:12]
    expected = {u: sharded.query(u, k=4, alpha=0.3).users for u in users}
    failures: list[str] = []

    def hammer(seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(15):
            u = rng.choice(users)
            got = sharded.query(u, k=4, alpha=0.3).users
            if got != expected[u]:
                failures.append(f"user {u}: {got} != {expected[u]}")

    threads = [threading.Thread(target=hammer, args=(s,)) for s in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(JOIN_TIMEOUT)
        assert not t.is_alive()
    assert not failures, failures
